"""``repro bench-online`` — the serving-layer performance harness.

Measures what the region-keyed cache (:mod:`repro.service`) buys at
query time.  For every dataset the harness builds the knowledge base
once, then runs the paper's E6/E7 query matrix (support sweep at fixed
confidence, confidence sweep at fixed support — Figures 7/8) through
:class:`repro.service.TaraService` in three phases per cell:

cold
    the first execution through a fresh cache (the miss path: region
    canonicalization + explorer execution + freeze/store);
warm
    ``--repeat`` further executions of the same request (the hit path:
    canonicalization + thaw) — results keep the best and the mean;
verified
    before anything is written, the cold answer, every warm answer, and
    a cache-bypassing :meth:`TaraService.uncached` execution are
    compared for equality; any divergence aborts the bench with a
    nonzero exit instead of recording a lie.

Schema of ``BENCH_online.json`` (``repro-bench-online/1``)
==========================================================

``schema``
    The literal string ``"repro-bench-online/1"``.  Consumers must
    reject files whose schema string they do not recognise.
``version`` / ``quick`` / ``host`` / ``repeat``
    As in ``BENCH_offline.json`` (no wall date — rule R005; the git
    history of the file carries the timeline).
``results``
    One object per (dataset, query class, setting) cell::

        {"dataset", "query_class",      # "Q1" | "Q2" | "Q3" | "Q5"
         "sweep",                       # "support" | "confidence"
         "minsupp", "minconf",          # the swept query setting
         "cold_ms",                     # first (miss) execution
         "warm_best_ms", "warm_mean_ms",# of the ``repeat`` hit runs
         "speedup",                     # cold_ms / warm_best_ms
         "verified": true}              # equality was checked

``metrics``
    Per-dataset :meth:`repro.service.ServiceMetrics.as_dict` snapshot
    aggregated over the whole matrix (hit/miss counts and latency
    histograms per query class).
``build_seconds``
    Per-dataset offline build wall time, for context.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Any, Dict, List, Tuple

from repro._version import __version__
from repro.bench.workloads import (
    _WORKLOADS,
    _windows,
    add_shared_bench_arguments,
    online_settings,
    select_datasets,
)
from repro.common.errors import ValidationError
from repro.common.timing import stopwatch
from repro.core import (
    CompareQuery,
    ContentQuery,
    ExplorerQuery,
    GenerationConfig,
    ParameterSetting,
    RecommendQuery,
    TaraKnowledgeBase,
    TrajectoryQuery,
    build_knowledge_base,
)
from repro.service import ServiceMetrics, TaraService

SCHEMA = "repro-bench-online/1"
DEFAULT_OUT = "BENCH_online.json"


def _build(name: str) -> Tuple[TaraKnowledgeBase, float]:
    """Offline-build one bench dataset (with the TARA-S item index)."""
    _, _, min_support, min_confidence = _WORKLOADS[name]
    config = GenerationConfig(
        min_support=min_support,
        min_confidence=min_confidence,
        build_item_index=True,
    )
    with stopwatch() as clock:
        knowledge_base = build_knowledge_base(_windows(name), config)
    return knowledge_base, clock.seconds


def _cell_queries(
    knowledge_base: TaraKnowledgeBase, setting: ParameterSetting
) -> List[Tuple[str, ExplorerQuery]]:
    """The query of each benchmarked class at one parameter setting.

    Q2 compares the setting against a slightly tighter one (support
    scaled up 50%); Q5 asks for rules mentioning the items of the
    catalog's first rule (guaranteed to exist in the rule universe).
    Both are arbitrary but deterministic — the bench measures serving
    cost, not answer content.
    """
    tighter = ParameterSetting(
        min_support=setting.min_support * 1.5,
        min_confidence=setting.min_confidence,
    )
    first_rule = knowledge_base.catalog.get(0)
    items = tuple(sorted(set(first_rule.antecedent + first_rule.consequent)))
    return [
        ("Q1", TrajectoryQuery(setting=setting, anchor_window=0)),
        ("Q2", CompareQuery(first=setting, second=tighter)),
        ("Q3", RecommendQuery(setting=setting)),
        ("Q5", ContentQuery(setting=setting, items=items)),
    ]


def run_online_matrix(
    datasets: Tuple[str, ...], repeat: int
) -> Tuple[List[Dict[str, Any]], Dict[str, Any], Dict[str, float]]:
    """Run the cold/warm/verify matrix; returns (results, metrics, builds).

    Raises :class:`ValidationError` if any cached answer deviates from
    the uncached recomputation — the bench refuses to record numbers
    for a cache that changed an answer.
    """
    results: List[Dict[str, Any]] = []
    metrics_by_dataset: Dict[str, Any] = {}
    build_seconds: Dict[str, float] = {}
    for dataset in datasets:
        knowledge_base, seconds = _build(dataset)
        build_seconds[dataset] = seconds
        print(
            f"  {dataset}: built {knowledge_base.window_count} windows, "
            f"{len(knowledge_base.catalog)} rules in {seconds:.2f} s"
        )
        metrics = ServiceMetrics()
        for sweep, minsupp, minconf in online_settings(dataset):
            setting = ParameterSetting(minsupp, minconf)
            for query_class, query in _cell_queries(knowledge_base, setting):
                # A fresh service per cell guarantees the first run is
                # cold even when sweep settings share stable regions;
                # the shared metrics object still aggregates everything.
                service = TaraService(knowledge_base, metrics=metrics)
                with stopwatch() as cold_clock:
                    cold_answer = service.execute(query)
                warm_times: List[float] = []
                for _ in range(repeat):
                    with stopwatch() as warm_clock:
                        warm_answer = service.execute(query)
                    warm_times.append(warm_clock.seconds)
                    if warm_answer != cold_answer:
                        raise ValidationError(
                            f"warm {query_class} answer diverged from cold "
                            f"on {dataset} at (supp={minsupp}, conf={minconf})"
                        )
                uncached_answer = service.uncached(query)
                if uncached_answer != cold_answer:
                    raise ValidationError(
                        f"cached {query_class} answer diverged from uncached "
                        f"on {dataset} at (supp={minsupp}, conf={minconf})"
                    )
                cold_ms = cold_clock.seconds * 1e3
                warm_best_ms = min(warm_times) * 1e3
                warm_mean_ms = sum(warm_times) / len(warm_times) * 1e3
                results.append(
                    {
                        "dataset": dataset,
                        "query_class": query_class,
                        "sweep": sweep,
                        "minsupp": minsupp,
                        "minconf": minconf,
                        "cold_ms": cold_ms,
                        "warm_best_ms": warm_best_ms,
                        "warm_mean_ms": warm_mean_ms,
                        "speedup": cold_ms / warm_best_ms if warm_best_ms else 0.0,
                        "verified": True,
                    }
                )
                print(
                    f"    {query_class} {sweep:<10} supp={minsupp:<6} "
                    f"conf={minconf:<5} cold={cold_ms:8.3f} ms  "
                    f"warm={warm_best_ms:8.3f} ms  "
                    f"({cold_ms / warm_best_ms:6.1f}x)"
                )
        metrics_by_dataset[dataset] = metrics.as_dict()
        print(metrics.report(f"  {dataset} serving metrics"))
    return results, metrics_by_dataset, build_seconds


def add_bench_online_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench-online`` arguments on *parser*."""
    add_shared_bench_arguments(parser, default_out=DEFAULT_OUT)


def run_bench_online(args: argparse.Namespace) -> int:
    """Entry point for the ``repro bench-online`` subcommand."""
    if args.repeat < 1:
        raise ValidationError(f"--repeat must be >= 1, got {args.repeat}")
    datasets = select_datasets(args)
    print(
        f"repro bench-online ({'quick' if args.quick else 'full'} matrix): "
        f"{len(datasets)} dataset(s), Q1/Q2/Q3/Q5 x E6/E7 sweeps, "
        f"repeat={args.repeat}"
    )
    results, metrics, build_seconds = run_online_matrix(datasets, args.repeat)
    payload = {
        "schema": SCHEMA,
        "version": __version__,
        "quick": args.quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "repeat": args.repeat,
        "results": results,
        "metrics": metrics,
        "build_seconds": build_seconds,
    }
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out} ({SCHEMA})")
    return 0
