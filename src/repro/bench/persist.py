"""``repro bench-persist`` — the persistence/storage performance harness.

Measures what the format-v2 container actually buys: for the retail
workload at 1x and 10x scale it builds one knowledge base, saves it in
both formats, then — **in a fresh child process per loader, so peak RSS
is attributable** — loads it eagerly (v1) and lazily (v2 under a
``--memory-budget``), runs the Q1-Q5 probe suite cold and warm, and
fingerprints every answer.

Two gates run before anything is written:

* every loader's answer fingerprint must be identical at every scale —
  the lazy scatter-gather path is not allowed to drift from the
  monolithic loader by a single byte of ``repr``;
* at gated scales (10x and above) the v2-lazy loader's peak RSS must be
  *strictly below* v1-eager's — the whole point of the container.

A violated gate aborts with a nonzero exit instead of recording a lie,
mirroring ``repro bench``'s fingerprint discipline.

Schema of ``BENCH_persist.json`` (``repro-bench-persist/1``)
============================================================

``schema``
    The literal string ``"repro-bench-persist/1"``.
``version`` / ``quick`` / ``host``
    As in ``BENCH_offline.json`` (no wall date — clock isolation,
    rule R005).
``memory_budget`` / ``shard_size`` / ``scales``
    The knobs the run used.
``results``
    One object per scale::

        {"scale", "transactions", "windows", "rules", "archive_entries",
         "file_bytes": {"v1": ..., "v2": ...},
         "loaders": {
            "v1-eager": {"load_seconds", "peak_rss_bytes",
                         "cold_seconds": {probe: s}, "warm_seconds": {...},
                         "fingerprint", "storage": null},
            "v2-lazy":  {... same, "storage": reader counters}},
         "rss_gated": bool,          # was the strict RSS gate applied?
         "rss_ratio": v2_peak / v1_peak}
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.common.errors import ValidationError
from repro.common.timing import stopwatch
from repro.core import (
    GenerationConfig,
    LazyTaraKnowledgeBase,
    ParameterSetting,
    TaraExplorer,
    build_knowledge_base,
    load_knowledge_base,
    save_knowledge_base,
)
from repro.core.queries import (
    CompareQuery,
    ContentQuery,
    ExplorerQuery,
    RecommendQuery,
    RollupQuery,
    TrajectoryQuery,
)
from repro.core.storage.format import DEFAULT_SHARD_SIZE
from repro.data import PeriodSpec, WindowedDatabase
from repro.datagen import retail_dataset
from repro.bench.workloads import _WORKLOADS

SCHEMA = "repro-bench-persist/1"
DEFAULT_OUT = "BENCH_persist.json"

#: Decoded-series LRU budget for the v2-lazy loader (bytes).
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

#: Scales at and above which the strict peak-RSS gate applies; below it
#: the interpreter's own footprint dominates and the comparison is
#: noise (still recorded, never gated).
RSS_GATE_MIN_SCALE = 10

_RETAIL_SEED = 11


#: Windows the probe session touches (the trailing region).
PROBE_REGION_WINDOWS = 3


def probe_queries(
    window_count: int, min_support: float, min_confidence: float
) -> List[Tuple[str, ExplorerQuery]]:
    """The fixed Q1-Q5 probe suite against one knowledge base.

    The suite models one *interactive session*: every query carries a
    :class:`PeriodSpec` scoped to the trailing
    :data:`PROBE_REGION_WINDOWS` windows, the same region-scoped shape
    the service cache keys on.  That scoping is what the lazy loader is
    for — an eager load pays for all windows regardless, a lazy load
    only materializes the region the analyst is looking at.  Settings
    are fixed multiples of the KB's own generation thresholds, sitting
    just above them so every probe returns non-trivial answers at every
    scale.
    """
    first = max(0, window_count - PROBE_REGION_WINDOWS)
    region = PeriodSpec(range(first, window_count))
    mid = ParameterSetting(min_support * 1.2, min_confidence * 1.17)
    return [
        (
            "Q1-trajectory",
            TrajectoryQuery(
                setting=mid, anchor_window=window_count - 1, spec=region
            ),
        ),
        (
            "Q2-compare",
            CompareQuery(
                first=mid,
                second=ParameterSetting(
                    min_support * 1.5, min_confidence * 1.33
                ),
                spec=region,
            ),
        ),
        ("Q3-recommend", RecommendQuery(setting=mid, window=window_count - 1)),
        (
            "Q4-rollup",
            RollupQuery(
                setting=ParameterSetting(
                    min_support * 1.2, min_confidence * 1.1
                ),
                spec=region,
            ),
        ),
        (
            "Q5-content",
            ContentQuery(
                setting=ParameterSetting(min_support, min_confidence),
                items=(1, 2, 3),
                spec=region,
            ),
        ),
    ]


def _peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; it is a
    monotonic high-water mark, which is exactly why every loader probe
    runs in its own child process.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def probe_main(argv: Sequence[str]) -> int:
    """Child-process entry: load one KB, probe it, print a JSON report.

    ``argv`` is ``[kb_path, memory_budget_or_none]``.  Everything the
    parent needs comes back as one JSON line on stdout; the exit code
    is nonzero on any failure (the parent treats that as fatal).
    """
    kb_path, budget_text = argv
    budget = None if budget_text == "none" else int(budget_text)
    with stopwatch() as load_clock:
        knowledge_base = load_knowledge_base(kb_path, memory_budget=budget)
    explorer = TaraExplorer(knowledge_base)
    queries = probe_queries(
        knowledge_base.window_count,
        knowledge_base.config.min_support,
        knowledge_base.config.min_confidence,
    )
    digest = hashlib.sha256()
    cold: Dict[str, float] = {}
    for name, query in queries:
        with stopwatch() as clock:
            answer = explorer.execute(query)
        cold[name] = clock.seconds
        digest.update(name.encode())
        digest.update(repr(answer).encode())
    warm: Dict[str, float] = {}
    for name, query in queries:
        with stopwatch() as clock:
            explorer.execute(query)
        warm[name] = clock.seconds
    storage = (
        knowledge_base.storage_counters()
        if isinstance(knowledge_base, LazyTaraKnowledgeBase)
        else None
    )
    report = {
        "load_seconds": load_clock.seconds,
        "peak_rss_bytes": _peak_rss_bytes(),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "fingerprint": digest.hexdigest(),
        "storage": storage,
    }
    print(json.dumps(report))
    return 0


def _run_probe_child(kb_path: Path, budget: Optional[int]) -> Dict[str, Any]:
    """Run :func:`probe_main` in a fresh interpreter; parse its report."""
    package_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else os.pathsep.join([package_root, existing])
    )
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            "import sys; from repro.bench.persist import probe_main; "
            "sys.exit(probe_main(sys.argv[1:]))",
            str(kb_path),
            "none" if budget is None else str(budget),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise ValidationError(
            f"loader probe for {kb_path} failed "
            f"(exit {completed.returncode}): {completed.stderr.strip()}"
        )
    report: Dict[str, Any] = json.loads(completed.stdout.splitlines()[-1])
    return report


def run_persist_matrix(
    scales: Sequence[int],
    memory_budget: int,
    shard_size: int,
) -> List[Dict[str, Any]]:
    """Build, save, and probe the retail workload at every scale.

    Raises :class:`ValidationError` on a fingerprint mismatch at any
    scale, or on a peak-RSS gate violation at gated scales.
    """
    base_transactions, base_windows, min_support, min_confidence = (
        _WORKLOADS["retail"]
    )
    results: List[Dict[str, Any]] = []
    for scale in scales:
        # Scaling a *temporal* workload means a longer history: scale
        # the transaction stream and the window count together, so the
        # per-window statistics stay fixed while the archive grows.
        # The probe session still touches only the trailing region —
        # exactly the asymmetry the lazy container exists to exploit.
        transactions = base_transactions * scale
        window_count = base_windows * scale
        print(f"  scale {scale}x: building retail KB ({transactions} txns, "
              f"{window_count} windows)")
        database = retail_dataset(
            transaction_count=transactions, seed=_RETAIL_SEED
        )
        windows = WindowedDatabase.partition_by_count(database, window_count)
        config = GenerationConfig(
            min_support=min_support,
            min_confidence=min_confidence,
            build_item_index=True,
        )
        knowledge_base = build_knowledge_base(windows, config)

        with tempfile.TemporaryDirectory(prefix="bench-persist-") as tmp:
            v1_path = Path(tmp) / "kb.v1.json"
            v2_path = Path(tmp) / "kb.tara2"
            with warnings.catch_warnings():
                # Writing v1 here is the point of the comparison, not a
                # use of the deprecated default.
                warnings.simplefilter("ignore", DeprecationWarning)
                v1_bytes = save_knowledge_base(
                    knowledge_base, v1_path, format_version=1
                )
            v2_bytes = save_knowledge_base(
                knowledge_base, v2_path, shard_size=shard_size
            )

            loaders = {
                "v1-eager": _run_probe_child(v1_path, None),
                "v2-lazy": _run_probe_child(v2_path, memory_budget),
            }

        eager = loaders["v1-eager"]
        lazy = loaders["v2-lazy"]
        if eager["fingerprint"] != lazy["fingerprint"]:
            raise ValidationError(
                f"scale {scale}x: v2-lazy answers diverged from v1-eager "
                f"(fingerprint mismatch) — refusing to record benchmark "
                f"results"
            )
        rss_gated = scale >= RSS_GATE_MIN_SCALE
        rss_ratio = lazy["peak_rss_bytes"] / eager["peak_rss_bytes"]
        if rss_gated and rss_ratio >= 1.0:
            raise ValidationError(
                f"scale {scale}x: v2-lazy peak RSS "
                f"{lazy['peak_rss_bytes']} is not strictly below v1-eager's "
                f"{eager['peak_rss_bytes']} — memory-bound gate violated"
            )
        for name, report in loaders.items():
            print(
                f"    {name:<9} load={report['load_seconds'] * 1e3:8.1f} ms  "
                f"peak_rss={report['peak_rss_bytes'] / 1e6:7.1f} MB  "
                f"cold_Q1={report['cold_seconds']['Q1-trajectory'] * 1e3:7.1f} ms"
            )
        print(f"    rss ratio v2/v1: {rss_ratio:.3f}"
              + ("  (gated)" if rss_gated else ""))
        results.append(
            {
                "scale": scale,
                "transactions": transactions,
                "windows": window_count,
                "rules": len(knowledge_base.catalog),
                "archive_entries": knowledge_base.archive.entry_count(),
                "file_bytes": {"v1": v1_bytes, "v2": v2_bytes},
                "loaders": loaders,
                "rss_gated": rss_gated,
                "rss_ratio": rss_ratio,
            }
        )
    return results


def persist_summary_markdown(results: Sequence[Dict[str, Any]]) -> str:
    """Render the loader comparison as a Markdown table for CI summaries."""
    lines = [
        "## repro bench-persist — eager v1 vs lazy v2",
        "",
        "| scale | loader | load (s) | peak RSS (MB) | cold Q1 (ms) | "
        "warm Q1 (ms) | file (MB) |",
        "|---:|---|---:|---:|---:|---:|---:|",
    ]
    for cell in results:
        for name in ("v1-eager", "v2-lazy"):
            report = cell["loaders"][name]
            file_bytes = cell["file_bytes"]["v1" if name == "v1-eager" else "v2"]
            lines.append(
                f"| {cell['scale']}x | {name} "
                f"| {report['load_seconds']:.3f} "
                f"| {report['peak_rss_bytes'] / 1e6:.1f} "
                f"| {report['cold_seconds']['Q1-trajectory'] * 1e3:.2f} "
                f"| {report['warm_seconds']['Q1-trajectory'] * 1e3:.2f} "
                f"| {file_bytes / 1e6:.2f} |"
            )
    lines.append("")
    lines.append(
        "Answer fingerprints verified identical across loaders at every "
        "scale; at gated scales v2-lazy peak RSS is strictly below "
        "v1-eager."
    )
    return "\n".join(lines) + "\n"


def add_bench_persist_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench-persist`` arguments on *parser*."""
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT}; '-' for none)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced matrix for CI: scales 1 and 2, no RSS gate",
    )
    parser.add_argument(
        "--scales",
        nargs="+",
        type=int,
        default=None,
        help="retail scale multipliers (default: 1 10; quick: 1 2)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=DEFAULT_MEMORY_BUDGET,
        help=(
            "decoded-series byte budget for the v2-lazy loader "
            f"(default: {DEFAULT_MEMORY_BUDGET})"
        ),
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=DEFAULT_SHARD_SIZE,
        help=f"rules per v2 shard (default: {DEFAULT_SHARD_SIZE})",
    )
    parser.add_argument(
        "--summary-out",
        default=None,
        metavar="PATH",
        help=(
            "append a Markdown loader comparison to PATH "
            "(CI passes $GITHUB_STEP_SUMMARY)"
        ),
    )


def run_bench_persist(args: argparse.Namespace) -> int:
    """Entry point for the ``repro bench-persist`` subcommand."""
    if args.memory_budget <= 0:
        raise ValidationError(
            f"--memory-budget must be positive, got {args.memory_budget}"
        )
    if args.scales is not None:
        scales: Sequence[int] = tuple(args.scales)
    else:
        scales = (1, 2) if args.quick else (1, 10)
    if any(scale < 1 for scale in scales):
        raise ValidationError(f"scales must be >= 1, got {list(scales)}")
    print(
        f"repro bench-persist ({'quick' if args.quick else 'full'}): "
        f"retail at {'/'.join(str(s) + 'x' for s in scales)}, "
        f"budget={args.memory_budget} B, shard_size={args.shard_size}"
    )
    results = run_persist_matrix(scales, args.memory_budget, args.shard_size)
    payload = {
        "schema": SCHEMA,
        "version": __version__,
        "quick": args.quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "memory_budget": args.memory_budget,
        "shard_size": args.shard_size,
        "scales": list(scales),
        "results": results,
    }
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out} ({SCHEMA})")
    if args.summary_out:
        with open(args.summary_out, "a", encoding="utf-8") as handle:
            handle.write(persist_summary_markdown(results))
        print(f"appended persistence summary to {args.summary_out}")
    return 0
