"""``repro bench-serve`` — the network-tier load harness.

Measures what a client actually sees through the socket: every cell of
the (dataset x query class x concurrency) matrix boots a fresh
:class:`repro.serve.TaraServer` on an ephemeral port, connects
``concurrency`` persistent clients, and drives an identical-request
workload through them:

round 1 (cold)
    all clients fire the same query concurrently at a cold cache — the
    window where request coalescing must collapse the burst into one
    execution;
rounds 2+ (warm)
    each client re-issues the query until the cell's request budget is
    spent (the cache-hit path, measured per request).

Per-request wall latencies give nearest-rank p50/p95/p99
(:func:`repro.common.stats.percentile`) and the cell wall time gives
RPS.  Before anything is written the harness verifies every served
answer byte-for-byte against a direct, cache-bypassing
:meth:`repro.service.TaraService.uncached` execution encoded through
the same wire mapping, and asserts that the identical-request workload
produced at least one coalesce hit — a bench that measured a broken
server aborts instead of recording a lie.

Schema of ``BENCH_serve.json`` (``repro-bench-serve/1``)
========================================================

``schema``
    The literal string ``"repro-bench-serve/1"``.
``version`` / ``quick`` / ``host`` / ``pool_size``
    As in the sibling artefacts (no wall date — rule R005).
``results``
    One object per (dataset, query class, concurrency) cell::

        {"dataset", "query_class",        # "Q1" | "Q2" | "Q3" | "Q5"
         "concurrency", "requests",       # clients, total requests sent
         "p50_ms", "p95_ms", "p99_ms",    # nearest-rank percentiles
         "rps",                           # requests / cell wall seconds
         "coalesce_executions",           # leader executions in the cell
         "coalesce_hits",                 # requests served by a leader
         "verified": true}                # wire answers == direct execute

``build_seconds``
    Per-dataset offline build wall time, for context.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
from typing import Any, Dict, List, Tuple

from repro._version import __version__
from repro.bench.online import _build, _cell_queries
from repro.bench.workloads import _WORKLOADS, online_settings, select_datasets
from repro.common.errors import ValidationError
from repro.common.stats import percentile
from repro.common.timing import stopwatch
from repro.core import ExplorerQuery, ParameterSetting, TaraKnowledgeBase
from repro.serve.client import ServeClient
from repro.serve.gateway import DEFAULT_POOL_SIZE
from repro.serve.protocol import JsonDict, encode_answer, encode_request
from repro.serve.server import ServeConfig, TaraServer
from repro.service.service import TaraService

SCHEMA = "repro-bench-serve/1"
DEFAULT_OUT = "BENCH_serve.json"

#: Concurrency levels per matrix mode (the spec requires at least two).
QUICK_CONCURRENCY: Tuple[int, ...] = (2, 8)
FULL_CONCURRENCY: Tuple[int, ...] = (4, 16)

#: Total requests per cell per matrix mode.
QUICK_REQUESTS = 24
FULL_REQUESTS = 64


async def _run_cell(
    knowledge_base: TaraKnowledgeBase,
    query_class: str,
    query: ExplorerQuery,
    *,
    concurrency: int,
    requests: int,
    pool_size: int,
) -> Dict[str, Any]:
    """Serve one cell through a fresh server; returns the result row."""
    service = TaraService(knowledge_base)
    server = TaraServer(service, ServeConfig(port=0, pool_size=pool_size))
    await server.start()
    host, port = server.address
    clients = [
        await ServeClient.open(host, port) for _ in range(concurrency)
    ]
    kind, payload = encode_request(query)
    latencies: List[float] = []
    envelopes: List[JsonDict] = []

    async def one(client: ServeClient) -> None:
        with stopwatch() as clock:
            status, envelope = await client.query(kind, payload)
        if status != 200 or not envelope.get("ok"):
            raise ValidationError(
                f"{query_class} request failed with HTTP {status}: {envelope}"
            )
        latencies.append(clock.seconds)
        envelopes.append(envelope)

    per_client = max(requests // concurrency, 1)

    async def drive(client: ServeClient) -> None:
        # The first iteration of every client races the others at the
        # cold cache (the coalescing window); later iterations measure
        # the warm path.
        for _ in range(per_client):
            await one(client)

    try:
        with stopwatch() as wall:
            await asyncio.gather(*(drive(client) for client in clients))
        coalesce = server.gateway.coalescer.counters()
        expected = encode_answer(query_class, service.uncached(query))
        for envelope in envelopes:
            if envelope["answer"] != expected:
                raise ValidationError(
                    f"served {query_class} answer diverged from direct "
                    f"execution at concurrency {concurrency}"
                )
    finally:
        for client in clients:
            await client.aclose()
        await server.stop()

    sent = len(latencies)
    millis = sorted(seconds * 1e3 for seconds in latencies)
    return {
        "dataset": "",  # filled by the matrix driver
        "query_class": query_class,
        "concurrency": concurrency,
        "requests": sent,
        "p50_ms": percentile(millis, 50.0),
        "p95_ms": percentile(millis, 95.0),
        "p99_ms": percentile(millis, 99.0),
        "rps": sent / wall.seconds if wall.seconds else 0.0,
        "coalesce_executions": coalesce["executions"],
        "coalesce_hits": coalesce["hits"],
        "verified": True,
    }


def run_serve_matrix(
    datasets: Tuple[str, ...],
    concurrency_levels: Tuple[int, ...],
    requests: int,
    pool_size: int,
) -> Tuple[List[Dict[str, Any]], Dict[str, float]]:
    """Run the full matrix; returns ``(results, build_seconds)``.

    Raises :class:`ValidationError` if any served answer deviates from
    direct execution, or if the identical-request workload never
    produced a coalesce hit (the coalescer would then be dead code).
    """
    results: List[Dict[str, Any]] = []
    build_seconds: Dict[str, float] = {}
    for dataset in datasets:
        knowledge_base, seconds = _build(dataset)
        build_seconds[dataset] = seconds
        print(
            f"  {dataset}: built {knowledge_base.window_count} windows, "
            f"{len(knowledge_base.catalog)} rules in {seconds:.2f} s"
        )
        _, minsupp, minconf = online_settings(dataset)[0]
        setting = ParameterSetting(minsupp, minconf)
        for query_class, query in _cell_queries(knowledge_base, setting):
            for concurrency in concurrency_levels:
                row = asyncio.run(
                    _run_cell(
                        knowledge_base,
                        query_class,
                        query,
                        concurrency=concurrency,
                        requests=requests,
                        pool_size=pool_size,
                    )
                )
                row["dataset"] = dataset
                results.append(row)
                print(
                    f"    {query_class} c={concurrency:<3} "
                    f"n={row['requests']:<4} "
                    f"p50={row['p50_ms']:8.3f} ms  "
                    f"p95={row['p95_ms']:8.3f} ms  "
                    f"p99={row['p99_ms']:8.3f} ms  "
                    f"rps={row['rps']:8.1f}  "
                    f"coalesced={row['coalesce_hits']}"
                )
    total_hits = sum(row["coalesce_hits"] for row in results)
    if total_hits == 0:
        raise ValidationError(
            "identical-request workload produced zero coalesce hits; "
            "the serving tier is not collapsing concurrent duplicates"
        )
    return results, build_seconds


def add_bench_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench-serve`` arguments on *parser*."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced CI matrix (retail only, fewer requests)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT}; '-' for stdout only)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=tuple(_WORKLOADS),
        default=None,
        help="benchmark only these datasets (default: quick/full selection)",
    )
    parser.add_argument(
        "--concurrency",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="concurrent clients per cell (default: 2 8 quick, 4 16 full)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=0,
        help="total requests per cell (default: 24 quick, 64 full)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help=f"server worker threads (default: {DEFAULT_POOL_SIZE})",
    )


def run_bench_serve(args: argparse.Namespace) -> int:
    """Entry point for the ``repro bench-serve`` subcommand."""
    datasets = select_datasets(args)
    if args.concurrency is not None:
        concurrency_levels = tuple(args.concurrency)
    else:
        concurrency_levels = (
            QUICK_CONCURRENCY if args.quick else FULL_CONCURRENCY
        )
    if any(level < 1 for level in concurrency_levels):
        raise ValidationError(
            f"--concurrency levels must be >= 1, got {concurrency_levels}"
        )
    requests = args.requests
    if requests <= 0:
        requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    print(
        f"repro bench-serve ({'quick' if args.quick else 'full'} matrix): "
        f"{len(datasets)} dataset(s), Q1/Q2/Q3/Q5 x "
        f"concurrency {list(concurrency_levels)}, "
        f"{requests} requests/cell, pool={args.pool_size}"
    )
    results, build_seconds = run_serve_matrix(
        datasets, concurrency_levels, requests, args.pool_size
    )
    payload = {
        "schema": SCHEMA,
        "version": __version__,
        "quick": args.quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "pool_size": args.pool_size,
        "concurrency": list(concurrency_levels),
        "requests_per_cell": requests,
        "results": results,
        "build_seconds": build_seconds,
    }
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out} ({SCHEMA})")
    return 0
