"""``repro bench-serve`` — the network-tier load harness.

Measures what a client actually sees through the socket: every cell of
the (dataset x query class x concurrency) matrix boots a fresh
:class:`repro.serve.TaraServer` on an ephemeral port, connects
``concurrency`` persistent clients, and drives an identical-request
workload through them:

round 1 (cold)
    all clients fire the same query concurrently at a cold cache — the
    window where request coalescing must collapse the burst into one
    execution (and the leader's encoded bytes populate the response
    cache); answers come back identity-coded and chunk-streamed;
variant warm-up (untimed)
    one gzip-accepting request compresses the cached body once and
    stores the pre-compressed variant — a one-time cost that parallels
    the cold miss, kept out of the steady-state numbers;
rounds 2+ (warm)
    each client re-issues the query until the cell's request budget is
    spent.  Clients advertise ``Accept-Encoding: gzip`` (as real HTTP
    clients do), so the wire-hot path measured here is one response-
    cache probe plus a pre-compressed byte splice — no re-encode, no
    re-compress (reported separately as ``warm_*``; the uncompressed
    cache hit is sampled after the workload as ``warm_identity_p50_
    ms``).

After the measured workload the harness exercises the negotiation
surface: a repeat gzip request that must come from the cached variant
without re-compressing (the variant counter must not move), and a
conditional request with the response's ``ETag`` that must answer 304
with an empty body.

Before anything is written the harness verifies every served body
byte-for-byte against a direct, cache-bypassing
:meth:`repro.service.TaraService.uncached` execution encoded through
:func:`repro.serve.protocol.encode_answer_blob` — identity bodies
directly, gzip bodies by gunzipping one (compression is deterministic:
fixed level, zeroed mtime, rule R005) and requiring the rest to be
byte-identical to it — and asserts the workload produced coalesce hits
*and* response-cache hits.  All verification runs after the clocks
stop, so multi-megabyte compares never inflate a concurrent request's
measured latency.  A bench that measured a broken server aborts
instead of recording a lie.

**The PR 10 gate.**  The PR 7 seed served warm Q1 at p50 ≈ 420 ms
(>99% of it re-encoding ~20k rows per request); the response cache
must bring the warm served Q1 p50 to single-digit milliseconds — at
least 50× better than the seed, enforced per dataset at the lowest
measured concurrency.

Schema of ``BENCH_serve.json`` (``repro-bench-serve/2``)
========================================================

``schema``
    The literal string ``"repro-bench-serve/2"``.
``version`` / ``quick`` / ``host`` / ``pool_size``
    As in the sibling artefacts (no wall date — rule R005);
    ``pool_size`` is the resolved thread count (default: one per CPU).
``gate``
    The enforced thresholds: ``{"warm_q1_p50_ms_max", "seed_warm_q1_
    p50_ms", "improvement_floor"}``.
``results``
    One object per (dataset, query class, concurrency) cell::

        {"dataset", "query_class",        # "Q1" | "Q2" | "Q3" | "Q5"
         "concurrency", "requests",       # clients, measured requests
         "p50_ms", "p95_ms", "p99_ms",    # all measured requests
         "cold_p50_ms",                   # the coalescing burst
         "warm_p50_ms", "warm_p95_ms", "warm_p99_ms",   # gzip-negotiated
         "warm_identity_p50_ms",          # uncompressed cache-hit sample
         "inproc_warm_ms",                # in-process warm reference
         "rps",                           # requests / cell wall seconds
         "coalesce_executions", "coalesce_hits",
         "respcache_hits", "respcache_misses", "respcache_hit_rate",
         "bytes_served",                  # body bytes served from cache
         "not_modified",                  # 304 conditional answers
         "body_bytes",                    # identity body size
         "gzip_bytes",                    # compressed variant size
         "verified": true}                # identity+gzip+304 verified

``build_seconds``
    Per-dataset offline build wall time, for context.
"""

from __future__ import annotations

import argparse
import asyncio
import gzip
import json
import os
import platform
from typing import Any, Dict, List, Tuple

from repro._version import __version__
from repro.bench.online import _build, _cell_queries
from repro.bench.workloads import _WORKLOADS, online_settings, select_datasets
from repro.common.errors import ValidationError
from repro.common.stats import percentile
from repro.common.timing import stopwatch
from repro.core import ExplorerQuery, ParameterSetting, TaraKnowledgeBase
from repro.serve.client import ServeClient
from repro.serve.gateway import resolve_pool_size
from repro.serve.protocol import encode_answer_blob, encode_request
from repro.serve.server import ServeConfig, TaraServer
from repro.service.service import TaraService

SCHEMA = "repro-bench-serve/2"
DEFAULT_OUT = "BENCH_serve.json"

#: Concurrency levels per matrix mode (the spec requires at least two).
QUICK_CONCURRENCY: Tuple[int, ...] = (2, 8)
FULL_CONCURRENCY: Tuple[int, ...] = (4, 16)

#: Total requests per cell per matrix mode.
QUICK_REQUESTS = 24
FULL_REQUESTS = 64

#: The PR 7 seed's warm served Q1 p50 (ms) and the required improvement.
SEED_WARM_Q1_P50_MS = 420.75
IMPROVEMENT_FLOOR = 50

#: Gate: warm served Q1 p50 must stay below seed / floor (~8.4 ms).
WARM_Q1_P50_GATE_MS = SEED_WARM_Q1_P50_MS / IMPROVEMENT_FLOOR


async def _run_cell(
    knowledge_base: TaraKnowledgeBase,
    query_class: str,
    query: ExplorerQuery,
    *,
    concurrency: int,
    requests: int,
    pool_size: int,
) -> Dict[str, Any]:
    """Serve one cell through a fresh server; returns the result row."""
    service = TaraService(knowledge_base)
    server = TaraServer(service, ServeConfig(port=0, pool_size=pool_size))
    await server.start()
    host, port = server.address
    clients = [
        await ServeClient.open(host, port) for _ in range(concurrency)
    ]
    kind, payload = encode_request(query)
    target = f"/v1/query/{kind}"
    # The reference bytes every served body must end with: a fresh,
    # cache-bypassing execution through the same canonical encoder.
    answer_tail = (
        b'"answer":' + encode_answer_blob(query_class, service.uncached(query))
        + b"}"
    )
    cold: List[float] = []
    warm: List[float] = []
    identity_warm: List[float] = []
    # (headers, raw body) of every exchange, verified AFTER the clocks
    # stop — gunzip and multi-megabyte compares would otherwise inflate
    # the latency of whatever other request is in flight.
    observed: List[Tuple[Dict[str, str], bytes]] = []

    async def one(
        client: ServeClient,
        bucket: List[float],
        *,
        accept_gzip: bool = True,
    ) -> None:
        with stopwatch() as clock:
            status, headers, raw = await client.exchange(
                "POST",
                target,
                payload,
                accept_gzip=accept_gzip,
                decompress=False,
            )
        if status != 200:
            raise ValidationError(
                f"{query_class} request failed with HTTP {status}: "
                f"{raw[:200]!r}"
            )
        bucket.append(clock.seconds)
        observed.append((dict(headers), raw))

    per_client = max(requests // concurrency, 2)

    async def drive(client: ServeClient) -> None:
        # Rounds 2+: the wire-hot warm path, measured per request.  The
        # clients advertise gzip (as real HTTP clients do), so after the
        # warm-up these are served from the pre-compressed variant.
        for _ in range(per_client - 1):
            await one(client, warm)

    def check_identity(raw: bytes) -> None:
        if not raw.startswith(b'{"ok":true') or not raw.endswith(answer_tail):
            raise ValidationError(
                f"served {query_class} body diverged from direct "
                f"execution at concurrency {concurrency}"
            )

    try:
        with stopwatch() as cold_wall:
            # Round 1: every client races the same query at a cold
            # cache — the coalescing window (answers are identity-coded:
            # the gzip variant only exists after a warm hit).
            await asyncio.gather(*(one(client, cold) for client in clients))
        # Variant warm-up (untimed, like the cold miss it parallels):
        # the first gzip-accepting cache hit compresses the body once
        # and stores the variant the warm rounds will be served from.
        warmup: List[float] = []
        await one(clients[0], warmup)
        with stopwatch() as warm_wall:
            await asyncio.gather(*(drive(client) for client in clients))
        wall_seconds = cold_wall.seconds + warm_wall.seconds

        # --- byte verification (off the clock) -----------------------
        gzip_reference: bytes = b""
        gzip_served = 0
        for response_headers, raw in observed:
            if response_headers.get("content-encoding") == "gzip":
                gzip_served += 1
                if not gzip_reference:
                    # One gunzip proves the compressed variant encodes
                    # the verified bytes; gzip output is deterministic
                    # (fixed level, zeroed mtime — rule R005), so every
                    # other gzip body must be byte-identical to it.
                    check_identity(gzip.decompress(raw))
                    gzip_reference = raw
                elif raw != gzip_reference:
                    raise ValidationError(
                        f"{query_class} gzip bodies diverged between "
                        f"requests at concurrency {concurrency}"
                    )
            else:
                check_identity(raw)
        if gzip_served == 0:
            raise ValidationError(
                f"warm {query_class} workload was never served from the "
                "compressed variant despite advertising gzip"
            )

        # --- negotiation surface (verified, not timed) ---------------
        variants_before = server.gateway.respcache.counters()["gzip_variants"]
        scratch: List[float] = []
        await one(clients[0], scratch)
        repeat_headers, repeat_body = observed[-1]
        variants_after = server.gateway.respcache.counters()["gzip_variants"]
        if (
            repeat_headers.get("content-encoding") != "gzip"
            or repeat_body != gzip_reference
            or variants_after != variants_before
        ):
            raise ValidationError(
                f"{query_class} gzip variant was re-compressed instead of "
                "served from the cache"
            )
        etag = repeat_headers.get("etag", "")
        if not etag:
            raise ValidationError(f"{query_class} response carried no ETag")
        status, _, body_304 = await clients[0].exchange(
            "POST", target, payload, if_none_match=etag
        )
        if status != 304 or body_304:
            raise ValidationError(
                f"conditional {query_class} request answered "
                f"{status} with {len(body_304)} body bytes, expected "
                "an empty 304"
            )
        # Identity-warm sample: the uncompressed cache hit, reported
        # alongside the gzip-negotiated warm path for transparency.
        for _ in range(3):
            await one(clients[0], identity_warm, accept_gzip=False)
        check_identity(observed[-1][1])

        coalesce = server.gateway.coalescer.counters()
        respcache = server.gateway.respcache.counters()
    finally:
        for client in clients:
            await client.aclose()
        await server.stop()

    # In-process warm reference: the same query through the service
    # façade (value-cache hit), for the "within ~10×" comparison.
    with stopwatch() as inproc:
        for _ in range(3):
            service.execute(query)
    inproc_warm_ms = inproc.seconds / 3 * 1e3

    sent = len(cold) + len(warm)
    millis = sorted(seconds * 1e3 for seconds in cold + warm)
    warm_ms = sorted(seconds * 1e3 for seconds in warm)
    cold_ms = sorted(seconds * 1e3 for seconds in cold)
    probes = respcache["hits"] + respcache["misses"]
    return {
        "dataset": "",  # filled by the matrix driver
        "query_class": query_class,
        "concurrency": concurrency,
        "requests": sent,
        "p50_ms": percentile(millis, 50.0),
        "p95_ms": percentile(millis, 95.0),
        "p99_ms": percentile(millis, 99.0),
        "cold_p50_ms": percentile(cold_ms, 50.0),
        "warm_p50_ms": percentile(warm_ms, 50.0),
        "warm_p95_ms": percentile(warm_ms, 95.0),
        "warm_p99_ms": percentile(warm_ms, 99.0),
        "warm_identity_p50_ms": percentile(
            sorted(seconds * 1e3 for seconds in identity_warm), 50.0
        ),
        "inproc_warm_ms": inproc_warm_ms,
        "rps": sent / wall_seconds if wall_seconds else 0.0,
        "coalesce_executions": coalesce["executions"],
        "coalesce_hits": coalesce["hits"],
        "respcache_hits": respcache["hits"],
        "respcache_misses": respcache["misses"],
        "respcache_hit_rate": (
            respcache["hits"] / probes if probes else 0.0
        ),
        "bytes_served": respcache["bytes_served"],
        "not_modified": respcache["not_modified"],
        "body_bytes": len(answer_tail) - len(b'"answer":') - 1,
        "gzip_bytes": len(gzip_reference),
        "verified": True,
    }


def run_serve_matrix(
    datasets: Tuple[str, ...],
    concurrency_levels: Tuple[int, ...],
    requests: int,
    pool_size: int,
) -> Tuple[List[Dict[str, Any]], Dict[str, float]]:
    """Run the full matrix; returns ``(results, build_seconds)``.

    Raises :class:`ValidationError` if any served body deviates from
    direct execution (identity or gzip), if the workload never produced
    a coalesce hit or a response-cache hit, or if the warm served Q1
    p50 misses the ≥50×-over-seed gate.
    """
    results: List[Dict[str, Any]] = []
    build_seconds: Dict[str, float] = {}
    for dataset in datasets:
        knowledge_base, seconds = _build(dataset)
        build_seconds[dataset] = seconds
        print(
            f"  {dataset}: built {knowledge_base.window_count} windows, "
            f"{len(knowledge_base.catalog)} rules in {seconds:.2f} s"
        )
        _, minsupp, minconf = online_settings(dataset)[0]
        setting = ParameterSetting(minsupp, minconf)
        for query_class, query in _cell_queries(knowledge_base, setting):
            for concurrency in concurrency_levels:
                row = asyncio.run(
                    _run_cell(
                        knowledge_base,
                        query_class,
                        query,
                        concurrency=concurrency,
                        requests=requests,
                        pool_size=pool_size,
                    )
                )
                row["dataset"] = dataset
                results.append(row)
                print(
                    f"    {query_class} c={concurrency:<3} "
                    f"n={row['requests']:<4} "
                    f"p50={row['p50_ms']:8.3f} ms  "
                    f"warm p50={row['warm_p50_ms']:7.3f} ms  "
                    f"p99={row['p99_ms']:8.3f} ms  "
                    f"rps={row['rps']:8.1f}  "
                    f"coalesced={row['coalesce_hits']}  "
                    f"cache hit%={row['respcache_hit_rate'] * 100:5.1f}"
                )
    total_hits = sum(row["coalesce_hits"] for row in results)
    if total_hits == 0:
        raise ValidationError(
            "identical-request workload produced zero coalesce hits; "
            "the serving tier is not collapsing concurrent duplicates"
        )
    if sum(row["respcache_hits"] for row in results) == 0:
        raise ValidationError(
            "warm workload produced zero response-cache hits; "
            "the encoded-answer byte cache is not serving"
        )
    floor_concurrency = min(concurrency_levels)
    for row in results:
        if (
            row["query_class"] == "Q1"
            and row["concurrency"] == floor_concurrency
            and row["warm_p50_ms"] > WARM_Q1_P50_GATE_MS
        ):
            raise ValidationError(
                f"warm served Q1 p50 {row['warm_p50_ms']:.3f} ms on "
                f"{row['dataset']} exceeds the gate "
                f"{WARM_Q1_P50_GATE_MS:.3f} ms "
                f"(seed {SEED_WARM_Q1_P50_MS} ms / {IMPROVEMENT_FLOOR}x)"
            )
    return results, build_seconds


def add_bench_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench-serve`` arguments on *parser*."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced CI matrix (retail only, fewer requests)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT}; '-' for stdout only)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=tuple(_WORKLOADS),
        default=None,
        help="benchmark only these datasets (default: quick/full selection)",
    )
    parser.add_argument(
        "--concurrency",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="concurrent clients per cell (default: 2 8 quick, 4 16 full)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=0,
        help="total requests per cell (default: 24 quick, 64 full)",
    )
    parser.add_argument(
        "--pool-size",
        default="auto",
        help="server worker threads: a count or 'auto' "
             "(one per CPU; default: auto)",
    )


def run_bench_serve(args: argparse.Namespace) -> int:
    """Entry point for the ``repro bench-serve`` subcommand."""
    datasets = select_datasets(args)
    if args.concurrency is not None:
        concurrency_levels = tuple(args.concurrency)
    else:
        concurrency_levels = (
            QUICK_CONCURRENCY if args.quick else FULL_CONCURRENCY
        )
    if any(level < 1 for level in concurrency_levels):
        raise ValidationError(
            f"--concurrency levels must be >= 1, got {concurrency_levels}"
        )
    requests = args.requests
    if requests <= 0:
        requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    pool_size = resolve_pool_size(args.pool_size)
    print(
        f"repro bench-serve ({'quick' if args.quick else 'full'} matrix): "
        f"{len(datasets)} dataset(s), Q1/Q2/Q3/Q5 x "
        f"concurrency {list(concurrency_levels)}, "
        f"{requests} requests/cell, pool={pool_size}"
    )
    results, build_seconds = run_serve_matrix(
        datasets, concurrency_levels, requests, pool_size
    )
    payload = {
        "schema": SCHEMA,
        "version": __version__,
        "quick": args.quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "pool_size": pool_size,
        "concurrency": list(concurrency_levels),
        "requests_per_cell": requests,
        "gate": {
            "warm_q1_p50_ms_max": WARM_Q1_P50_GATE_MS,
            "seed_warm_q1_p50_ms": SEED_WARM_Q1_P50_MS,
            "improvement_floor": IMPROVEMENT_FLOOR,
        },
        "results": results,
        "build_seconds": build_seconds,
    }
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out} ({SCHEMA})")
    return 0
