"""Shared benchmark workloads and CLI flags for the perf harnesses.

Both ``repro bench`` (offline build, :mod:`repro.bench.offline`) and
``repro bench-online`` (serving layer, :mod:`repro.bench.online`) draw
their datasets, generation thresholds, and common command-line flags
from here, so the two harnesses always agree on what "retail" or
"--quick" means.

The online sweeps mirror the paper's Figure 7/8 experiments (E6/E7):
query-time support varies at a fixed confidence, then confidence varies
at a fixed support, with every query value at or above the dataset's
generation thresholds.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Tuple

from repro.common.errors import ValidationError
from repro.data import TransactionDatabase, WindowedDatabase
from repro.datagen import quest_t5k_scaled, retail_dataset

#: Offline matrix rows (datasets) and columns (miners).  The quick (CI)
#: matrix pairs the reference miner with the vertical bitmap kernel so
#: every PR re-proves the cross-miner fingerprint equality *and* records
#: the kernel's speedup; ``repro bench --miners`` overrides either list.
QUICK_DATASETS: Tuple[str, ...] = ("retail",)
QUICK_MINERS: Tuple[str, ...] = ("apriori", "vertical")
FULL_DATASETS: Tuple[str, ...] = ("retail", "T5k")
FULL_MINERS: Tuple[str, ...] = ("apriori", "fpgrowth", "vertical")

#: Per-dataset (transaction count, windows, supp_g, conf_g).
_WORKLOADS: Dict[str, Tuple[int, int, float, float]] = {
    "retail": (5_000, 8, 0.010, 0.30),
    "T5k": (2_500, 8, 0.020, 0.30),
}

#: E6 analogue: query-time supports per dataset (all above supp_g).
ONLINE_SUPPORT_SWEEP: Dict[str, Tuple[float, ...]] = {
    "retail": (0.012, 0.02, 0.03),
    "T5k": (0.02, 0.03, 0.04),
}

#: E7 analogue: query-time confidences (all at/above conf_g).
ONLINE_CONFIDENCE_SWEEP: Tuple[float, ...] = (0.3, 0.45, 0.6)

#: Confidence held fixed while support varies (per dataset).
ONLINE_FIXED_CONFIDENCE: Dict[str, float] = {
    "retail": 0.4,
    "T5k": 0.3,
}


def _database(name: str) -> TransactionDatabase:
    """The raw transaction database of one bench dataset."""
    size = _WORKLOADS[name][0]
    if name == "retail":
        return retail_dataset(transaction_count=size, seed=11)
    if name == "T5k":
        return quest_t5k_scaled(scale=size / 5_000_000, seed=5)
    raise ValidationError(f"unknown bench dataset {name!r}")


def _windows(name: str) -> WindowedDatabase:
    """The dataset split into its standard evolving windows."""
    return WindowedDatabase.partition_by_count(
        _database(name), _WORKLOADS[name][1]
    )


def online_settings(name: str) -> List[Tuple[str, float, float]]:
    """The E6/E7 query matrix for one dataset.

    Returns ``(sweep, minsupp, minconf)`` rows: the support sweep at the
    dataset's fixed confidence, then the confidence sweep at the lowest
    swept support.
    """
    rows: List[Tuple[str, float, float]] = [
        ("support", supp, ONLINE_FIXED_CONFIDENCE[name])
        for supp in ONLINE_SUPPORT_SWEEP[name]
    ]
    rows.extend(
        ("confidence", ONLINE_SUPPORT_SWEEP[name][0], conf)
        for conf in ONLINE_CONFIDENCE_SWEEP
    )
    return rows


def add_shared_bench_arguments(
    parser: argparse.ArgumentParser, *, default_out: str
) -> None:
    """Install the flags both perf harnesses share on *parser*.

    ``--quick`` (reduced CI matrix), ``--out`` (JSON artefact path, with
    the harness-specific *default_out*), ``--repeat`` (repetitions per
    cell; best-of), and ``--datasets`` (explicit dataset subset
    overriding the quick/full selection).
    """
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced CI matrix (retail only)",
    )
    parser.add_argument(
        "--out",
        default=default_out,
        help=f"output JSON path (default: {default_out}; '-' for stdout only)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="repetitions per cell; results keep the best (default: 2)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=tuple(_WORKLOADS),
        default=None,
        help="benchmark only these datasets (default: quick/full selection)",
    )


def select_datasets(args: argparse.Namespace) -> Tuple[str, ...]:
    """Resolve the dataset list from the shared flags."""
    if args.datasets:
        return tuple(args.datasets)
    return QUICK_DATASETS if args.quick else FULL_DATASETS
