"""The performance harnesses behind ``repro bench`` and ``repro bench-online``.

Two sibling harnesses share one workload vocabulary
(:mod:`repro.bench.workloads`):

* :mod:`repro.bench.offline` builds the fixed dataset × miner ×
  executor-strategy matrix and emits ``BENCH_offline.json``
  (``repro-bench-offline/1``);
* :mod:`repro.bench.online` drives the serving layer's region-keyed
  cache through the E6/E7 query sweeps and emits ``BENCH_online.json``
  (``repro-bench-online/1``), verifying cached answers against uncached
  recomputation before writing anything;
* :mod:`repro.bench.serve` drives the asyncio network tier with
  concurrent clients and emits ``BENCH_serve.json``
  (``repro-bench-serve/1``), verifying served answers against direct
  execution and asserting the coalescer actually collapsed duplicates;
* :mod:`repro.bench.ingest` drives concurrent query clients while a
  writer appends windows through ``/v1/admin/append`` and emits
  ``BENCH_ingest.json`` (``repro-bench-ingest/1``), verifying every
  answer against a serial rebuild at the answering snapshot's window
  count and gating p99-under-ingest at twice the no-ingest baseline;
* :mod:`repro.bench.persist` compares the eager v1 loader against the
  lazy v2 container (child process per loader, so peak RSS is
  attributable) and emits ``BENCH_persist.json``
  (``repro-bench-persist/1``), verifying answer fingerprints across
  loaders and gating v2 peak RSS strictly below v1 at 10x scale.

For backward compatibility this package re-exports the offline
harness's public surface under its historical ``repro.bench`` names
(``SCHEMA``, ``_WORKLOADS``, ``run_bench``, ...).
"""

from repro.bench.ingest import (
    DEFAULT_OUT as INGEST_DEFAULT_OUT,
    SCHEMA as INGEST_SCHEMA,
    add_bench_ingest_arguments,
    run_bench_ingest,
    run_ingest_matrix,
)
from repro.bench.offline import (
    DEFAULT_OUT,
    SCHEMA,
    add_bench_arguments,
    knowledge_base_fingerprint,
    run_bench,
    run_matrix,
)
from repro.bench.online import (
    DEFAULT_OUT as ONLINE_DEFAULT_OUT,
    SCHEMA as ONLINE_SCHEMA,
    add_bench_online_arguments,
    run_bench_online,
    run_online_matrix,
)
from repro.bench.persist import (
    DEFAULT_OUT as PERSIST_DEFAULT_OUT,
    SCHEMA as PERSIST_SCHEMA,
    add_bench_persist_arguments,
    run_bench_persist,
    run_persist_matrix,
)
from repro.bench.serve import (
    DEFAULT_OUT as SERVE_DEFAULT_OUT,
    SCHEMA as SERVE_SCHEMA,
    add_bench_serve_arguments,
    run_bench_serve,
    run_serve_matrix,
)
from repro.bench.workloads import (
    FULL_DATASETS,
    FULL_MINERS,
    ONLINE_CONFIDENCE_SWEEP,
    ONLINE_FIXED_CONFIDENCE,
    ONLINE_SUPPORT_SWEEP,
    QUICK_DATASETS,
    QUICK_MINERS,
    _WORKLOADS,
    online_settings,
    select_datasets,
)

__all__ = [
    "DEFAULT_OUT",
    "FULL_DATASETS",
    "FULL_MINERS",
    "INGEST_DEFAULT_OUT",
    "INGEST_SCHEMA",
    "ONLINE_CONFIDENCE_SWEEP",
    "ONLINE_DEFAULT_OUT",
    "ONLINE_FIXED_CONFIDENCE",
    "ONLINE_SCHEMA",
    "ONLINE_SUPPORT_SWEEP",
    "PERSIST_DEFAULT_OUT",
    "PERSIST_SCHEMA",
    "QUICK_DATASETS",
    "QUICK_MINERS",
    "SCHEMA",
    "SERVE_DEFAULT_OUT",
    "SERVE_SCHEMA",
    "add_bench_arguments",
    "add_bench_ingest_arguments",
    "add_bench_online_arguments",
    "add_bench_persist_arguments",
    "add_bench_serve_arguments",
    "knowledge_base_fingerprint",
    "online_settings",
    "run_bench",
    "run_bench_ingest",
    "run_bench_online",
    "run_bench_persist",
    "run_bench_serve",
    "run_ingest_matrix",
    "run_matrix",
    "run_online_matrix",
    "run_persist_matrix",
    "run_serve_matrix",
    "select_datasets",
]
