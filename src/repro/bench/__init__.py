"""The performance harnesses behind ``repro bench`` and ``repro bench-online``.

Two sibling harnesses share one workload vocabulary
(:mod:`repro.bench.workloads`):

* :mod:`repro.bench.offline` builds the fixed dataset × miner ×
  executor-strategy matrix and emits ``BENCH_offline.json``
  (``repro-bench-offline/1``);
* :mod:`repro.bench.online` drives the serving layer's region-keyed
  cache through the E6/E7 query sweeps and emits ``BENCH_online.json``
  (``repro-bench-online/1``), verifying cached answers against uncached
  recomputation before writing anything;
* :mod:`repro.bench.serve` drives the asyncio network tier with
  concurrent clients and emits ``BENCH_serve.json``
  (``repro-bench-serve/1``), verifying served answers against direct
  execution and asserting the coalescer actually collapsed duplicates.

For backward compatibility this package re-exports the offline
harness's public surface under its historical ``repro.bench`` names
(``SCHEMA``, ``_WORKLOADS``, ``run_bench``, ...).
"""

from repro.bench.offline import (
    DEFAULT_OUT,
    SCHEMA,
    add_bench_arguments,
    knowledge_base_fingerprint,
    run_bench,
    run_matrix,
)
from repro.bench.online import (
    DEFAULT_OUT as ONLINE_DEFAULT_OUT,
    SCHEMA as ONLINE_SCHEMA,
    add_bench_online_arguments,
    run_bench_online,
    run_online_matrix,
)
from repro.bench.serve import (
    DEFAULT_OUT as SERVE_DEFAULT_OUT,
    SCHEMA as SERVE_SCHEMA,
    add_bench_serve_arguments,
    run_bench_serve,
    run_serve_matrix,
)
from repro.bench.workloads import (
    FULL_DATASETS,
    FULL_MINERS,
    ONLINE_CONFIDENCE_SWEEP,
    ONLINE_FIXED_CONFIDENCE,
    ONLINE_SUPPORT_SWEEP,
    QUICK_DATASETS,
    QUICK_MINERS,
    _WORKLOADS,
    online_settings,
    select_datasets,
)

__all__ = [
    "DEFAULT_OUT",
    "FULL_DATASETS",
    "FULL_MINERS",
    "ONLINE_CONFIDENCE_SWEEP",
    "ONLINE_DEFAULT_OUT",
    "ONLINE_FIXED_CONFIDENCE",
    "ONLINE_SCHEMA",
    "ONLINE_SUPPORT_SWEEP",
    "QUICK_DATASETS",
    "QUICK_MINERS",
    "SCHEMA",
    "SERVE_DEFAULT_OUT",
    "SERVE_SCHEMA",
    "add_bench_arguments",
    "add_bench_online_arguments",
    "add_bench_serve_arguments",
    "knowledge_base_fingerprint",
    "online_settings",
    "run_bench",
    "run_bench_online",
    "run_bench_serve",
    "run_matrix",
    "run_online_matrix",
    "run_serve_matrix",
    "select_datasets",
]
