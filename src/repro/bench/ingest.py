"""``repro bench-ingest`` — the mixed append+query load harness.

Measures what PR 8's MVCC snapshot epochs actually bought: query
latency while the served knowledge base is *evolving*.  For every
dataset the harness splits the standard window sequence in two, serves
the first half through a :class:`repro.core.IncrementalTara` publisher
behind a fresh :class:`repro.serve.TaraServer`, then drives the same
concurrent query workload twice:

baseline (no ingest)
    ``concurrency`` persistent clients cycle through the E6/E7 query
    settings (Q1/Q2/Q3/Q5 per setting) against the frozen half-built
    snapshot — per-request wall latencies per query class;
ingest
    the identical client load runs again while a writer connection
    POSTs the held-back windows through ``/v1/admin/append`` one batch
    at a time (retrying on HTTP 409 while a build is in flight).  The
    clients keep cycling until the writer has landed every window, so
    the load genuinely overlaps every publish.

Before anything is written the harness verifies every served answer —
baseline and mid-ingest — byte-for-byte against a serial rebuild at the
answering snapshot's window count: each envelope carries
``snapshot_epoch`` (the pinned snapshot's window count), and a
reference :class:`repro.service.TaraService` built single-threaded from
exactly that window prefix must produce the identical encoded answer.
It also asserts the ingest phase observed at least two distinct
snapshot epochs (otherwise the load never overlapped a publish and the
"with ingest" numbers would be a lie), and gates the headline result:
pooled p99 during concurrent ingest must stay within
:data:`P99_GATE_RATIO` of the no-ingest baseline.

Schema of ``BENCH_ingest.json`` (``repro-bench-ingest/1``)
==========================================================

``schema``
    The literal string ``"repro-bench-ingest/1"``.
``version`` / ``quick`` / ``host`` / ``pool_size``
    As in the sibling artefacts (no wall date — rule R005).
``results``
    One object per (dataset, query class)::

        {"dataset", "query_class",            # "Q1" | "Q2" | "Q3" | "Q5"
         "concurrency",
         "baseline_requests", "ingest_requests",
         "baseline_p50_ms", "baseline_p95_ms", "baseline_p99_ms",
         "ingest_p50_ms", "ingest_p95_ms", "ingest_p99_ms",
         "verified": true}                    # vs serial rebuild

``gates``
    One object per dataset: the pooled (all classes) p99 of each phase,
    their ratio, and the enforced ``limit``.
``ingest``
    One object per dataset: ``windows_start`` / ``windows_end``,
    ``publishes``, ``append_retries`` (409 responses absorbed by the
    writer), and ``epochs_observed`` mid-ingest.
``build_seconds``
    Per-dataset initial (pre-serve) publish wall time, for context.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.bench.online import _cell_queries
from repro.bench.workloads import (
    _WORKLOADS,
    _windows,
    online_settings,
    select_datasets,
)
from repro.common.errors import ValidationError
from repro.common.stats import percentile
from repro.common.timing import stopwatch
from repro.core import (
    ExplorerQuery,
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
)
from repro.data.transactions import Transaction
from repro.serve.client import ServeClient
from repro.serve.gateway import DEFAULT_POOL_SIZE
from repro.serve.protocol import JsonDict, encode_answer, encode_request
from repro.serve.server import ServeConfig, TaraServer
from repro.service.service import TaraService

SCHEMA = "repro-bench-ingest/1"
DEFAULT_OUT = "BENCH_ingest.json"

#: Windows held back from the initial publish and appended live during
#: the ingest phase (every bench dataset has eight standard windows).
HELD_BACK = 4

#: The acceptance gate: pooled p99 with concurrent ingest must stay
#: within this factor of the no-ingest baseline.
P99_GATE_RATIO = 2.0

#: Concurrent query clients per matrix mode (the writer is extra).
QUICK_CONCURRENCY = 3
FULL_CONCURRENCY = 6

#: Minimum query requests per phase per matrix mode; the ingest phase
#: keeps cycling past this floor until the writer finishes.
QUICK_REQUESTS = 36
FULL_REQUESTS = 96

#: How long the writer waits before retrying a 409 (build in flight).
_RETRY_SECONDS = 0.02
_MAX_RETRIES = 500

#: One served request, queued for post-phase verification.
_Observation = Tuple[str, ExplorerQuery, Any]

_CLASSES = ("Q1", "Q2", "Q3", "Q5")


def _publisher_config(name: str) -> GenerationConfig:
    """The generation config the bench dataset is served with."""
    _, _, min_support, min_confidence = _WORKLOADS[name]
    return GenerationConfig(
        min_support=min_support,
        min_confidence=min_confidence,
        build_item_index=True,
    )


def _batches(name: str) -> List[List[Transaction]]:
    """The dataset's standard windows as publishable batches."""
    batches = [list(window) for window in _windows(name)]
    if len(batches) <= HELD_BACK:
        raise ValidationError(
            f"dataset {name!r} has {len(batches)} windows; bench-ingest "
            f"needs more than the {HELD_BACK} it holds back for appends"
        )
    return batches


def _reference_services(
    config: GenerationConfig,
    batches: Sequence[Sequence[Transaction]],
    start: int,
) -> Dict[int, TaraService]:
    """A serial rebuild at every window count the server can answer at.

    Keyed by window count == snapshot epoch: the verifier looks up each
    envelope's ``snapshot_epoch`` here and demands the identical answer.
    """
    services: Dict[int, TaraService] = {}
    for count in range(start, len(batches) + 1):
        publisher = IncrementalTara(config)
        publisher.publish([list(batch) for batch in batches[:count]])
        services[count] = TaraService(publisher.knowledge_base)
    return services


class _Phase:
    """Latencies and served envelopes collected by one load phase."""

    def __init__(self) -> None:
        self.latencies: Dict[str, List[float]] = {qc: [] for qc in _CLASSES}
        self.observations: List[_Observation] = []
        self.epochs: set = set()

    @property
    def requests(self) -> int:
        return sum(len(values) for values in self.latencies.values())

    def pooled_p99_ms(self) -> float:
        pooled = sorted(
            seconds * 1e3
            for values in self.latencies.values()
            for seconds in values
        )
        return percentile(pooled, 99.0)


async def _drive_clients(
    clients: Sequence[ServeClient],
    plans: Sequence[Sequence[Tuple[str, ExplorerQuery, str, JsonDict]]],
    cycles: int,
    phase: _Phase,
    writer_done: Optional["asyncio.Event"],
) -> None:
    """Run the cycling query load; one coroutine per client.

    Each client walks the setting plans at its own offset so concurrent
    clients mix cache hits and misses.  When *writer_done* is given the
    clients keep cycling past their budget until it is set, so the load
    overlaps the entire publish sequence.
    """

    async def drive(client: ServeClient, index: int) -> None:
        cycle = 0
        while cycle < cycles or (
            writer_done is not None and not writer_done.is_set()
        ):
            for query_class, query, kind, payload in plans[
                (index + cycle) % len(plans)
            ]:
                with stopwatch() as clock:
                    status, envelope = await client.query(kind, payload)
                if status != 200 or not envelope.get("ok"):
                    raise ValidationError(
                        f"{query_class} request failed with "
                        f"HTTP {status}: {envelope}"
                    )
                phase.latencies[query_class].append(clock.seconds)
                phase.observations.append((query_class, query, envelope))
                phase.epochs.add(envelope["snapshot_epoch"])
            cycle += 1

    await asyncio.gather(
        *(drive(client, index) for index, client in enumerate(clients))
    )


async def _drive_writer(
    writer: ServeClient,
    held: Sequence[Sequence[Transaction]],
    done: "asyncio.Event",
) -> int:
    """Append the held-back windows one batch at a time; returns retries."""
    retries = 0
    try:
        for batch in held:
            for attempt in range(_MAX_RETRIES + 1):
                status, body = await writer.admin_append([list(batch)])
                if status == 200:
                    break
                if status == 409:
                    retries += 1
                    await asyncio.sleep(_RETRY_SECONDS)
                    continue
                raise ValidationError(
                    f"append failed with HTTP {status}: {body}"
                )
            else:
                raise ValidationError(
                    f"append still building after {_MAX_RETRIES} retries"
                )
    finally:
        done.set()
    return retries


def _verify(
    phase: _Phase,
    references: Dict[int, TaraService],
    label: str,
) -> None:
    """Every served answer must match the serial rebuild at its epoch."""
    expected_cache: Dict[Tuple[int, str, str], JsonDict] = {}
    for query_class, query, envelope in phase.observations:
        epoch = envelope["snapshot_epoch"]
        if epoch not in references:
            raise ValidationError(
                f"{label} served snapshot_epoch {epoch}, which no serial "
                f"rebuild can reach (have {sorted(references)})"
            )
        cache_key = (epoch, query_class, repr(query))
        expected = expected_cache.get(cache_key)
        if expected is None:
            expected = encode_answer(
                query_class, references[epoch].uncached(query)
            )
            expected_cache[cache_key] = expected
        if envelope["answer"] != expected:
            raise ValidationError(
                f"{label} {query_class} answer at epoch {epoch} diverged "
                f"from the serial rebuild at the same window count"
            )


async def _run_dataset(
    name: str,
    *,
    concurrency: int,
    requests: int,
    pool_size: int,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any], Dict[str, Any], float]:
    """Both phases for one dataset; returns (rows, gate, ingest, build_s)."""
    config = _publisher_config(name)
    batches = _batches(name)
    start = len(batches) - HELD_BACK
    held = batches[start:]

    publisher = IncrementalTara(config)
    with stopwatch() as build_clock:
        publisher.publish([list(batch) for batch in batches[:start]])
    references = _reference_services(config, batches, start)

    initial = publisher.knowledge_base
    plans = []
    for _, minsupp, minconf in online_settings(name):
        setting = ParameterSetting(minsupp, minconf)
        plan = []
        for query_class, query in _cell_queries(initial, setting):
            kind, payload = encode_request(query)
            plan.append((query_class, query, kind, payload))
        plans.append(plan)
    cycles = max(requests // (concurrency * len(_CLASSES)), 1)

    service = TaraService(publisher)
    server = TaraServer(service, ServeConfig(port=0, pool_size=pool_size))
    await server.start()
    host, port = server.address
    clients = [
        await ServeClient.open(host, port) for _ in range(concurrency)
    ]
    writer = await ServeClient.open(host, port)

    baseline = _Phase()
    ingest = _Phase()
    try:
        await _drive_clients(clients, plans, cycles, baseline, None)
        done = asyncio.Event()
        retries_task = asyncio.ensure_future(
            _drive_writer(writer, held, done)
        )
        await asyncio.gather(
            _drive_clients(clients, plans, cycles, ingest, done),
            retries_task,
        )
        retries = retries_task.result()
        final = await writer.snapshot()
    finally:
        for client in clients:
            await client.aclose()
        await writer.aclose()
        await server.stop()

    _verify(baseline, references, f"{name} baseline")
    _verify(ingest, references, f"{name} ingest")
    if len(ingest.epochs) < 2:
        raise ValidationError(
            f"{name} ingest phase observed only epochs "
            f"{sorted(ingest.epochs)}; the query load never overlapped "
            f"a publish, so the bench measured nothing"
        )
    windows_end = final[1]["snapshot"]["windows"]
    if windows_end != len(batches):
        raise ValidationError(
            f"{name} writer landed {windows_end} windows, "
            f"expected {len(batches)}"
        )

    baseline_p99 = baseline.pooled_p99_ms()
    ingest_p99 = ingest.pooled_p99_ms()
    gate = {
        "dataset": name,
        "baseline_p99_ms": baseline_p99,
        "ingest_p99_ms": ingest_p99,
        "ratio": ingest_p99 / baseline_p99 if baseline_p99 else 0.0,
        "limit": P99_GATE_RATIO,
    }
    rows: List[Dict[str, Any]] = []
    for query_class in _CLASSES:
        base_ms = sorted(s * 1e3 for s in baseline.latencies[query_class])
        load_ms = sorted(s * 1e3 for s in ingest.latencies[query_class])
        rows.append(
            {
                "dataset": name,
                "query_class": query_class,
                "concurrency": concurrency,
                "baseline_requests": len(base_ms),
                "ingest_requests": len(load_ms),
                "baseline_p50_ms": percentile(base_ms, 50.0),
                "baseline_p95_ms": percentile(base_ms, 95.0),
                "baseline_p99_ms": percentile(base_ms, 99.0),
                "ingest_p50_ms": percentile(load_ms, 50.0),
                "ingest_p95_ms": percentile(load_ms, 95.0),
                "ingest_p99_ms": percentile(load_ms, 99.0),
                "verified": True,
            }
        )
    ingest_stats = {
        "dataset": name,
        "windows_start": start,
        "windows_end": windows_end,
        "publishes": len(held),
        "append_retries": retries,
        "epochs_observed": sorted(ingest.epochs),
    }
    return rows, gate, ingest_stats, build_clock.seconds


def run_ingest_matrix(
    datasets: Tuple[str, ...],
    concurrency: int,
    requests: int,
    pool_size: int,
) -> Tuple[
    List[Dict[str, Any]],
    List[Dict[str, Any]],
    List[Dict[str, Any]],
    Dict[str, float],
]:
    """Run both phases for every dataset and enforce the p99 gate.

    Raises :class:`ValidationError` if any served answer deviates from
    the serial rebuild at its snapshot's window count, if the ingest
    load never overlapped a publish, or if pooled p99 under ingest
    exceeds :data:`P99_GATE_RATIO` times the baseline.
    """
    results: List[Dict[str, Any]] = []
    gates: List[Dict[str, Any]] = []
    ingest_stats: List[Dict[str, Any]] = []
    build_seconds: Dict[str, float] = {}
    for dataset in datasets:
        rows, gate, stats, seconds = asyncio.run(
            _run_dataset(
                dataset,
                concurrency=concurrency,
                requests=requests,
                pool_size=pool_size,
            )
        )
        build_seconds[dataset] = seconds
        results.extend(rows)
        gates.append(gate)
        ingest_stats.append(stats)
        print(
            f"  {dataset}: {stats['windows_start']} -> "
            f"{stats['windows_end']} windows over {stats['publishes']} "
            f"publishes, epochs observed {stats['epochs_observed']}, "
            f"{stats['append_retries']} append retries"
        )
        for row in rows:
            print(
                f"    {row['query_class']} "
                f"baseline p50={row['baseline_p50_ms']:8.3f} "
                f"p99={row['baseline_p99_ms']:8.3f} ms | "
                f"ingest p50={row['ingest_p50_ms']:8.3f} "
                f"p99={row['ingest_p99_ms']:8.3f} ms"
            )
        print(
            f"    pooled p99: baseline {gate['baseline_p99_ms']:.3f} ms, "
            f"ingest {gate['ingest_p99_ms']:.3f} ms "
            f"(ratio {gate['ratio']:.2f}, limit {P99_GATE_RATIO:.1f})"
        )
        if gate["ingest_p99_ms"] > P99_GATE_RATIO * gate["baseline_p99_ms"]:
            raise ValidationError(
                f"{dataset}: p99 under concurrent ingest "
                f"({gate['ingest_p99_ms']:.3f} ms) exceeds "
                f"{P99_GATE_RATIO}x the no-ingest baseline "
                f"({gate['baseline_p99_ms']:.3f} ms)"
            )
    return results, gates, ingest_stats, build_seconds


def add_bench_ingest_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench-ingest`` arguments on *parser*."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced CI matrix (retail only, fewer requests)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT}; '-' for stdout only)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=tuple(_WORKLOADS),
        default=None,
        help="benchmark only these datasets (default: quick/full selection)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=0,
        help="concurrent query clients (default: 3 quick, 6 full)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=0,
        help="minimum query requests per phase (default: 36 quick, 96 full)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help=f"server worker threads (default: {DEFAULT_POOL_SIZE})",
    )


def run_bench_ingest(args: argparse.Namespace) -> int:
    """Entry point for the ``repro bench-ingest`` subcommand."""
    datasets = select_datasets(args)
    concurrency = args.concurrency
    if concurrency <= 0:
        concurrency = QUICK_CONCURRENCY if args.quick else FULL_CONCURRENCY
    requests = args.requests
    if requests <= 0:
        requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    print(
        f"repro bench-ingest ({'quick' if args.quick else 'full'} matrix): "
        f"{len(datasets)} dataset(s), Q1/Q2/Q3/Q5 x "
        f"{concurrency} clients + 1 writer, "
        f">={requests} requests/phase, pool={args.pool_size}"
    )
    results, gates, ingest_stats, build_seconds = run_ingest_matrix(
        datasets, concurrency, requests, args.pool_size
    )
    payload = {
        "schema": SCHEMA,
        "version": __version__,
        "quick": args.quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "pool_size": args.pool_size,
        "concurrency": concurrency,
        "requests_per_phase": requests,
        "results": results,
        "gates": gates,
        "ingest": ingest_stats,
        "build_seconds": build_seconds,
    }
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out} ({SCHEMA})")
    return 0
