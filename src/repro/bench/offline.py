"""``repro bench`` — the offline-phase performance harness.

Datasets, thresholds, and the shared ``--quick/--out/--repeat/--datasets``
flags live in :mod:`repro.bench.workloads`, shared with the online
serving harness (:mod:`repro.bench.online`).

Runs a small fixed workload matrix (dataset × miner × executor
strategy) through the complete offline build, records wall-clock and
the Figure 9 per-task phase breakdown for every cell, verifies that
every parallel build is bit-identical to its serial twin, and emits a
machine-readable ``BENCH_offline.json`` that seeds the repository's
performance trajectory (one file per commit that cares to record one;
CI regenerates it on every PR).  docs/performance.md explains how to
read the numbers and why they scale the way they do.

Schema of ``BENCH_offline.json`` (``repro-bench-offline/1``)
============================================================

``schema``
    The literal string ``"repro-bench-offline/1"``.  Consumers must
    reject files whose schema string they do not recognise.
``version``
    The ``repro`` package version that produced the file.
``quick``
    ``true`` when the reduced CI matrix ran (``--quick``).
``host``
    ``{"platform", "python", "implementation", "cpu_count"}`` — enough
    to judge whether two trajectory points are comparable.  No wall
    date is recorded (clock isolation, rule R005); the git history of
    the file carries the timeline.
``workers`` / ``repeat``
    The ``--workers`` cap (``null`` = all CPUs) and how many times each
    cell was built (wall seconds are the best of the repeats).
``results``
    One object per matrix cell::

        {"dataset", "transactions", "windows", "miner", "strategy",
         "workers",            # resolved worker count for this cell
         "wall_seconds",       # best-of-``repeat`` full build wall time
         "phases",             # Figure 9 task -> seconds, of the best run
         "rules", "archive_entries", "archive_bytes",
         "fingerprint"}        # sha256 over catalog + archive bytes + EPS axes

    Equal fingerprints are *enforced* before the file is written, along
    two axes: every parallel build must match its serial twin, and every
    miner's serial build must match the first miner's on the same
    dataset (rule ids, archive bytes, and EPS axes are miner-independent
    by construction — ``derive_rules`` processes itemsets in canonical
    order).  A divergence aborts the bench with a nonzero exit instead
    of recording a lie.
``speedups``
    One object per parallel cell:
    ``{"dataset", "miner", "strategy", "workers", "speedup_vs_serial"}``
    where the speedup is serial best wall over the cell's best wall.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.common.errors import ValidationError
from repro.common.executors import EXECUTOR_STRATEGIES, ExecutorConfig
from repro.common.timing import stopwatch
from repro.core import GenerationConfig, TaraKnowledgeBase, build_knowledge_base
from repro.mining import MINERS
from repro.bench.workloads import (
    FULL_MINERS,
    QUICK_MINERS,
    _WORKLOADS,
    _database,
    _windows,
    add_shared_bench_arguments,
    select_datasets,
)

SCHEMA = "repro-bench-offline/1"
DEFAULT_OUT = "BENCH_offline.json"


def knowledge_base_fingerprint(knowledge_base: TaraKnowledgeBase) -> str:
    """sha256 over everything the offline phase produces.

    Covers the interned rules in id order, every rule's encoded archive
    series, per-window sizes/bounds, and each EPS slice's distinct
    support/confidence axes — the structures the serial-equivalence
    guarantee promises are identical across executor strategies.
    """
    digest = hashlib.sha256()
    catalog = knowledge_base.catalog
    for rule_id in range(len(catalog)):
        rule = catalog.get(rule_id)
        digest.update(repr((rule_id, rule.antecedent, rule.consequent)).encode())
    archive = knowledge_base.archive
    for rule_id in sorted(archive.rule_ids()):
        digest.update(repr(rule_id).encode())
        digest.update(archive.encoded_series(rule_id))
    for window in range(archive.window_count):
        digest.update(
            repr((archive.window_size(window), archive.missing_count_bound(window))).encode()
        )
    for window_slice in knowledge_base.slices:
        digest.update(
            repr(
                (
                    window_slice.window,
                    tuple(window_slice.supports),
                    tuple(window_slice.confidences),
                )
            ).encode()
        )
    digest.update(repr(knowledge_base.rules_in_window).encode())
    return digest.hexdigest()


def _run_cell(
    dataset: str,
    miner: str,
    strategy: str,
    workers: Optional[int],
    repeat: int,
) -> Dict[str, Any]:
    """Build one matrix cell ``repeat`` times; keep the fastest run."""
    windows = _windows(dataset)
    _, _, min_support, min_confidence = _WORKLOADS[dataset]
    executor = ExecutorConfig(strategy=strategy, max_workers=workers)
    config = GenerationConfig(
        min_support=min_support,
        min_confidence=min_confidence,
        miner=miner,
        executor=executor,
    )
    best_seconds = None
    best_kb = None
    for _ in range(repeat):
        with stopwatch() as clock:
            knowledge_base = build_knowledge_base(windows, config)
        if best_seconds is None or clock.seconds < best_seconds:
            best_seconds = clock.seconds
            best_kb = knowledge_base
    assert best_kb is not None and best_seconds is not None  # repeat >= 1
    return {
        "dataset": dataset,
        "transactions": len(_database(dataset)),
        "windows": windows.window_count,
        "miner": miner,
        "strategy": strategy,
        "workers": executor.resolved_workers(windows.window_count),
        "wall_seconds": best_seconds,
        "phases": best_kb.timer.breakdown(),
        "rules": len(best_kb.catalog),
        "archive_entries": best_kb.archive.entry_count(),
        "archive_bytes": best_kb.archive.encoded_size_bytes(),
        "fingerprint": knowledge_base_fingerprint(best_kb),
    }


def run_matrix(
    datasets: Sequence[str],
    miners: Sequence[str],
    strategies: Sequence[str],
    workers: Optional[int],
    repeat: int,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Run the workload matrix; returns (results, speedups).

    Raises :class:`ValidationError` when any parallel cell's fingerprint
    deviates from its serial twin, or when two miners' serial builds of
    the same dataset disagree — the bench refuses to record numbers for
    a build that broke serial or cross-miner equivalence.
    """
    results: List[Dict[str, Any]] = []
    speedups: List[Dict[str, Any]] = []
    for dataset in datasets:
        reference_serial: Optional[Dict[str, Any]] = None
        for miner in miners:
            serial_cell: Optional[Dict[str, Any]] = None
            for strategy in strategies:
                cell = _run_cell(dataset, miner, strategy, workers, repeat)
                results.append(cell)
                print(
                    f"  {dataset:<8} {miner:<9} {strategy:<8} "
                    f"workers={cell['workers']}  "
                    f"wall={cell['wall_seconds'] * 1e3:9.1f} ms  "
                    f"rules={cell['rules']}"
                )
                if strategy == "serial":
                    serial_cell = cell
                    continue
                if serial_cell is None:
                    continue
                if cell["fingerprint"] != serial_cell["fingerprint"]:
                    raise ValidationError(
                        f"{strategy} build of {dataset}/{miner} diverged "
                        f"from serial (fingerprint mismatch) — refusing to "
                        f"record benchmark results"
                    )
                speedup = serial_cell["wall_seconds"] / cell["wall_seconds"]
                speedups.append(
                    {
                        "dataset": dataset,
                        "miner": miner,
                        "strategy": strategy,
                        "workers": cell["workers"],
                        "speedup_vs_serial": speedup,
                    }
                )
                print(
                    f"  {'':<8} {'':<9} {strategy:<8} speedup vs serial: "
                    f"{speedup:.2f}x"
                )
            if serial_cell is None:
                continue
            if reference_serial is None:
                reference_serial = serial_cell
            elif serial_cell["fingerprint"] != reference_serial["fingerprint"]:
                raise ValidationError(
                    f"{miner} build of {dataset} diverged from "
                    f"{reference_serial['miner']} (fingerprint mismatch) — "
                    f"refusing to record benchmark results"
                )
    return results, speedups


def phase_summary_markdown(results: Sequence[Dict[str, Any]]) -> str:
    """Render the per-phase breakdown of *results* as a Markdown table.

    One row per matrix cell, one column per Figure 9 phase (union of
    the phase names seen across cells, in first-seen order so the
    builder's canonical ordering is preserved).  Written to
    ``--summary-out`` — in CI that is ``$GITHUB_STEP_SUMMARY``, so the
    phase trajectory is readable from the job page without downloading
    the ``BENCH_offline.json`` artifact.
    """
    phase_names: List[str] = []
    for cell in results:
        for name in cell["phases"]:
            if name not in phase_names:
                phase_names.append(name)
    lines = [
        "## repro bench — per-phase breakdown (best-of-repeat, seconds)",
        "",
        "| dataset | miner | strategy | wall | "
        + " | ".join(phase_names)
        + " |",
        "|---|---|---|---:|" + "---:|" * len(phase_names),
    ]
    for cell in results:
        phases = cell["phases"]
        row = [
            cell["dataset"],
            cell["miner"],
            cell["strategy"],
            f"{cell['wall_seconds']:.4f}",
        ]
        row.extend(
            f"{phases[name]:.4f}" if name in phases else "—"
            for name in phase_names
        )
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append(
        "All fingerprints verified equal across executor strategies and "
        "miners before these numbers were recorded."
    )
    return "\n".join(lines) + "\n"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench`` arguments on *parser*."""
    add_shared_bench_arguments(parser, default_out=DEFAULT_OUT)
    parser.add_argument(
        "--summary-out",
        default=None,
        metavar="PATH",
        help=(
            "append a Markdown per-phase breakdown to PATH "
            "(CI passes $GITHUB_STEP_SUMMARY)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker cap for parallel strategies (default: all CPUs)",
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        choices=EXECUTOR_STRATEGIES,
        default=list(EXECUTOR_STRATEGIES),
        help="executor strategies to benchmark (default: all three)",
    )
    parser.add_argument(
        "--miners",
        nargs="+",
        choices=sorted(MINERS),
        default=None,
        help="benchmark only these miners (default: quick/full selection)",
    )


def run_bench(args: argparse.Namespace) -> int:
    """Entry point for the ``repro bench`` subcommand."""
    if args.repeat < 1:
        raise ValidationError(f"--repeat must be >= 1, got {args.repeat}")
    datasets = select_datasets(args)
    if args.miners:
        miners: Sequence[str] = tuple(args.miners)
    else:
        miners = QUICK_MINERS if args.quick else FULL_MINERS
    print(
        f"repro bench ({'quick' if args.quick else 'full'} matrix): "
        f"{len(datasets)} dataset(s) x {len(miners)} miner(s) x "
        f"{len(args.strategies)} strategies, repeat={args.repeat}, "
        f"cpus={os.cpu_count()}"
    )
    results, speedups = run_matrix(
        datasets, miners, args.strategies, args.workers, args.repeat
    )
    payload = {
        "schema": SCHEMA,
        "version": __version__,
        "quick": args.quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "workers": args.workers,
        "repeat": args.repeat,
        "results": results,
        "speedups": speedups,
    }
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out} ({SCHEMA})")
    if args.summary_out:
        with open(args.summary_out, "a", encoding="utf-8") as handle:
            handle.write(phase_summary_markdown(results))
        print(f"appended phase summary to {args.summary_out}")
    return 0
