"""Argument handling for ``repro lint`` and ``python -m repro.analysis``.

Kept separate from :mod:`repro.cli` so the linter is runnable (and
testable) without importing the heavyweight mining/CLI stack, e.g. in a
pre-commit hook or a minimal CI container.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.base import all_rules
from repro.analysis.runner import lint_paths
from repro.common.errors import ReproError

#: Default lint target when none is given: the installed package tree
#: if run from a checkout (src/repro), else the current directory.
DEFAULT_TARGETS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is stable for CI consumption)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--index-cache",
        default=None,
        metavar="PATH",
        help=(
            "pickle file caching the whole-program index; reused when "
            "the linted files are unchanged (size+mtime stamp)"
        ),
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed *args*; returns exit code."""
    if args.list_rules:
        print(format_rule_catalogue())
        return 0
    select: Optional[List[str]] = None
    if args.select:
        select = [token.strip() for token in args.select.split(",") if token.strip()]
    try:
        rules = all_rules(tuple(select) if select else None)
        report = lint_paths(
            args.paths, rules, index_cache=getattr(args, "index_cache", None)
        )
    except ReproError as error:
        # Usage errors (unknown rule id, missing target) exit 2 from both
        # entry points; the main CLI's generic ReproError handler would
        # otherwise report 1, conflating them with findings.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format_text())
    # Crashed rules exit 3 (distinct from findings=1 and usage=2) and
    # dump their tracebacks on stderr so CI logs show the cause even
    # when only the JSON report is archived.
    for crash in report.crashes:
        print(f"rule crash: {crash.format()}", file=sys.stderr)
        if crash.traceback:
            print(crash.traceback, file=sys.stderr)
    return report.exit_code


def format_rule_catalogue() -> str:
    """Human-readable id / title / scope / hint table of every rule."""
    lines: List[str] = []
    for rule in all_rules():
        scope = ", ".join(rule.scope.include) or "repro/**"
        if rule.scope.exclude:
            scope += f" (except {', '.join(rule.scope.exclude)})"
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"      scope: {scope}")
        lines.append(f"      fix:   {rule.fix_hint}")
        rationale = rule.rationale.splitlines()
        if rationale:
            lines.append(f"      why:   {rationale[0]}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
