"""R007 — values published to shared readers are transitively immutable.

The region-keyed cache works because a stored answer can be handed to
any number of concurrent readers without copying: two threads thawing
the same entry share the frozen value objects inside it.  One mutable
container smuggled into that frozen form — a ``list`` inside a cached
tuple, a ``dict`` field on a "frozen" dataclass — turns region-cache
hits into cross-request aliasing bugs that no fingerprint test catches
(the first request computes the right answer; the *second* one mutates
it for everybody).  PRs 4–5 made every build byte-identical; this rule
keeps served answers that way.

Three publish surfaces are checked:

* the ``value`` argument of :meth:`RegionKeyedCache.put` — anything
  stored in the cache — and, since PR 10, of
  :meth:`ResponseCache.put` / :meth:`ResponseCache.put_gzip`: encoded
  response bodies are spliced verbatim into every later matching
  response, so a mutable value there corrupts wire bytes for all
  future readers;
* every ``return`` of a function marked with a trailing
  ``repro-lint: publish`` directive on its ``def`` line (seeded on the
  service's freeze hook) — the declared freeze boundary;
* field annotations of frozen dataclasses in the answer-type layers:
  ``Dict``/``List``/``Set``/``bytearray`` (and their lowercase builtin
  forms) anywhere in a frozen class's field type mean the "immutable"
  value owns a mutable container — use ``Mapping``/``Sequence``/
  ``Tuple``/``FrozenSet`` views instead, which mypy-strict then holds
  read-only at every consumer site.

Expression verdicts come from :mod:`repro.analysis.dataflow`: reaching
definitions inside the function, ``self.*`` alias tracking, and a
bounded call-graph walk from the sink (so ``x = self._freeze(...)``
resolves through the callee's returns).  Only *provably* mutable values
are flagged; opaque expressions pass.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.base import ProjectRule, RuleScope, register_rule
from repro.analysis.dataflow import MUTABLE, EvalScope, classify_mutability
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ClassInfo,
    FunctionNode,
    ModuleInfo,
    ProjectIndex,
)

#: ``(class name, method, value-argument index)`` cache publish sinks.
PUT_SINKS: Tuple[Tuple[str, str, int], ...] = (
    ("RegionKeyedCache", "put", 1),
    ("ResponseCache", "put", 1),
    ("ResponseCache", "put_gzip", 1),
)

#: Annotation names that make a frozen dataclass field mutable inside.
MUTABLE_ANNOTATIONS = frozenset(
    {
        "Dict",
        "dict",
        "List",
        "list",
        "Set",
        "set",
        "bytearray",
        "DefaultDict",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
    }
)


def _annotation_names(annotation: ast.expr) -> Iterator[str]:
    """Every bare name mentioned anywhere in a type annotation."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String (forward-reference) annotations re-parse lazily.
            try:
                inner = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            yield from _annotation_names(inner.body)


@register_rule
class PublishImmutabilityRule(ProjectRule):
    """Publish sinks receive only transitively immutable values.

    Whitelist: tuples, frozensets, str/int/float/bytes, ``Fraction``,
    frozen dataclasses and NamedTuples.  A list/dict/set/bytearray that
    provably reaches a cache put or a declared publish return is an
    error — freeze it at the boundary instead.
    """

    rule_id = "R007"
    title = "published values must be transitively immutable"
    fix_hint = (
        "freeze before publishing (tuple/frozenset/Mapping views, "
        "frozen dataclasses); annotate frozen-dataclass fields with "
        "read-only types (Mapping, Sequence, Tuple, FrozenSet)"
    )
    scope = RuleScope(
        include=(
            "repro/service/",
            "repro/serve/",
            "repro/core/queries.py",
        )
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Walk cache-put sinks, publish-marked returns, frozen fields."""
        for module in sorted(
            index.modules.values(), key=lambda m: m.logical_path
        ):
            yield from self._check_frozen_fields(module)
            for owner, function in _functions_of(module):
                scope = EvalScope(
                    index=index, module=module, function=function, owner=owner
                )
                yield from self._check_put_sinks(module, scope, function)
                if function.lineno in module.publish_lines:
                    yield from self._check_publish_returns(
                        module, scope, function
                    )

    # ------------------------------------------------------------------
    # sink checks
    # ------------------------------------------------------------------
    def _check_put_sinks(
        self,
        module: ModuleInfo,
        scope: EvalScope,
        function: FunctionNode,
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            sink = self._match_put_sink(node, scope)
            if sink is None:
                continue
            class_name, method, value = sink
            if classify_mutability(value, scope) is MUTABLE:
                yield self.project_finding(
                    module,
                    value,
                    f"mutable container published into "
                    f"{class_name}.{method}; cached values are shared "
                    "across readers and must be transitively immutable",
                )

    def _match_put_sink(
        self, node: ast.Call, scope: EvalScope
    ) -> Optional[Tuple[str, str, ast.expr]]:
        """Resolve a call as a cache publish sink, or ``None``."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        receiver_class: Optional[str] = None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and scope.owner is not None
        ):
            receiver_class = scope.owner.attr_classes.get(receiver.attr)
        elif isinstance(receiver, ast.Name) and receiver.id == "self":
            receiver_class = scope.owner.name if scope.owner else None
        for class_name, method, arg_index in PUT_SINKS:
            if func.attr != method or receiver_class != class_name:
                continue
            value: Optional[ast.expr] = None
            if len(node.args) > arg_index:
                value = node.args[arg_index]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "value":
                        value = keyword.value
            if value is not None:
                return class_name, method, value
        return None

    def _check_publish_returns(
        self,
        module: ModuleInfo,
        scope: EvalScope,
        function: FunctionNode,
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is not None:
                if classify_mutability(node.value, scope) is MUTABLE:
                    yield self.project_finding(
                        module,
                        node.value,
                        f"{function.name} is a declared publish boundary "
                        "but returns a mutable container; freeze it "
                        "(tuple/frozenset/frozen dataclass) first",
                    )

    # ------------------------------------------------------------------
    # frozen dataclass fields
    # ------------------------------------------------------------------
    def _check_frozen_fields(self, module: ModuleInfo) -> Iterator[Finding]:
        for info in module.classes.values():
            if not info.is_frozen_dataclass:
                continue
            for statement in info.node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                mutable_names = sorted(
                    set(_annotation_names(statement.annotation))
                    & MUTABLE_ANNOTATIONS
                )
                if mutable_names:
                    yield self.project_finding(
                        module,
                        statement,
                        f"frozen dataclass {info.name} field "
                        f"{statement.target.id!r} is annotated with "
                        f"mutable container(s) {', '.join(mutable_names)}; "
                        "published answers alias these across readers",
                    )


def _functions_of(
    module: ModuleInfo,
) -> Iterator[Tuple[Optional[ClassInfo], FunctionNode]]:
    """Every (owning class or None, def) in one module."""
    for function in module.functions.values():
        yield None, function
    for info in module.classes.values():
        for method in info.methods.values():
            yield info, method
