"""R006 — lock discipline for ``guarded-by`` attributes.

The serving layer's thread-safety story is one sentence long: every
piece of :class:`~repro.service.service.TaraService` shared state is
touched under ``self._lock``.  Nothing enforced that sentence — a
refactor that reads ``self._epoch`` outside the lock compiles, passes
every single-threaded test, and corrupts cache coherence only under
concurrent appends.  This rule pins the contract: an attribute declared
``guarded-by=<lock>`` (a trailing directive on its assignment line) may
only be read or written while the declaring class lexically holds
``with self.<lock>:``.

Checked per class with declarations:

* **public methods** — every guarded access must sit inside the lock;
* **private methods** — a helper may rely on its *callers* holding the
  lock, so its unguarded accesses are flagged only when some intra-class
  call site does not hold the lock (or when no in-class call site
  exists to prove the discipline);
* ``__init__`` is exempt: construction happens-before publication.

Nested acquisition of two *distinct* locks must follow the single
global order declared with a standalone ``lock-order=`` directive
(qualified ``Class.attr`` names).  Nesting the runner can see —
lexical ``with`` nesting and one call hop through the project index —
is checked; acquisition chained through dynamic callbacks (e.g. an
append listener) cannot be traced and is covered by the declaration
itself plus review.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import ProjectRule, RuleScope, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ClassInfo,
    FunctionNode,
    ModuleInfo,
    ProjectIndex,
)


@dataclass
class _MethodFacts:
    """Lock-relevant events inside one method body."""

    #: (guarded attr, node, locks held) for each guarded self.* access.
    accesses: List[Tuple[str, ast.AST, FrozenSet[str]]] = field(default_factory=list)
    #: (method name, locks held) for each intra-class self.m(...) call.
    self_calls: List[Tuple[str, FrozenSet[str]]] = field(default_factory=list)
    #: (lock attr, node, locks held before) for each with-acquisition.
    acquisitions: List[Tuple[str, ast.AST, FrozenSet[str]]] = field(default_factory=list)


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_locks(statement: ast.With, lock_attrs: FrozenSet[str]) -> List[str]:
    """Lock attributes acquired by one ``with`` statement."""
    acquired: List[str] = []
    for item in statement.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_attrs:
            acquired.append(attr)
    return acquired


def _collect_method_facts(
    method: FunctionNode, info: ClassInfo
) -> _MethodFacts:
    """Walk one method tracking which locks are lexically held."""
    facts = _MethodFacts()
    guarded = frozenset(info.guarded)
    lock_attrs = info.lock_attrs

    def visit(node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, ast.With):
            acquired = _with_locks(node, lock_attrs)
            for lock in acquired:
                facts.acquisitions.append((lock, node, held))
            inner = held.union(acquired)
            # The context expressions themselves evaluate before the
            # locks are held.
            for item in node.items:
                visit(item.context_expr, held)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, ast.Call):
            func = node.func
            attr = _self_attr(func) if isinstance(func, ast.Attribute) else None
            if attr is not None and attr in info.methods:
                facts.self_calls.append((attr, held))
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and attr in guarded:
                facts.accesses.append((attr, node, held))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested def or lambda runs later, possibly without the
            # lock; its guarded accesses are judged with no locks held.
            for child in ast.iter_child_nodes(node):
                visit(child, frozenset())
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for statement in method.body:
        visit(statement, frozenset())
    return facts


@register_rule
class LockDisciplineRule(ProjectRule):
    """Guarded attributes are only touched under their declared lock.

    ``self.attr = ...  # repro-lint: guarded-by=_lock`` declares the
    contract; this rule makes a missing ``with self._lock:`` a lint
    failure instead of a code-review hope.  Nested acquisitions of
    distinct locks must follow the declared global lock order.
    """

    rule_id = "R006"
    title = "guarded-by attributes accessed only under their lock"
    fix_hint = (
        "wrap the access in `with self.<lock>:`, or move it into a "
        "helper whose callers all hold the lock; nested locks must "
        "follow the declared lock-order"
    )
    scope = RuleScope()  # any class that declares guarded-by contracts

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Check every class with guarded-by declarations, then lock order."""
        order, order_findings = self._declared_order(index)
        yield from order_findings
        for module in sorted(
            index.modules.values(), key=lambda m: m.logical_path
        ):
            for info in module.classes.values():
                if not info.guarded and not info.lock_attrs:
                    continue
                yield from self._check_class(module, info, order)

    # ------------------------------------------------------------------
    # guarded accesses
    # ------------------------------------------------------------------
    def _check_class(
        self,
        module: ModuleInfo,
        info: ClassInfo,
        order: Tuple[str, ...],
    ) -> Iterator[Finding]:
        for attr, lock in sorted(info.guarded.items()):
            if lock not in info.lock_attrs:
                yield self.project_finding(
                    module,
                    info.node,
                    f"{info.name}.{attr} declares guarded-by={lock} but "
                    f"{info.name} never assigns self.{lock} a "
                    "threading.Lock/RLock",
                )
        facts: Dict[str, _MethodFacts] = {
            name: _collect_method_facts(method, info)
            for name, method in info.methods.items()
        }
        # Call sites per private helper: (caller, locks held at the call).
        call_sites: Dict[str, List[FrozenSet[str]]] = {}
        for name, method_facts in facts.items():
            if name == "__init__":
                continue
            for callee, held in method_facts.self_calls:
                call_sites.setdefault(callee, []).append(held)
        for name in sorted(facts):
            if name == "__init__":
                continue
            method_facts = facts[name]
            is_public = not name.startswith("_")
            for attr, node, held in method_facts.accesses:
                lock = info.guarded[attr]
                if lock in held:
                    continue
                if is_public:
                    yield self.project_finding(
                        module,
                        node,
                        f"{info.name}.{name} touches guarded attribute "
                        f"self.{attr} outside `with self.{lock}:` "
                        f"(declared guarded-by={lock})",
                    )
                    continue
                sites = call_sites.get(name, [])
                unlocked_sites = [held for held in sites if lock not in held]
                if not sites or unlocked_sites:
                    why = (
                        "and no intra-class call site proves the lock is held"
                        if not sites
                        else "and at least one intra-class call site does "
                        "not hold the lock"
                    )
                    yield self.project_finding(
                        module,
                        node,
                        f"{info.name}.{name} touches guarded attribute "
                        f"self.{attr} without `with self.{lock}:` {why}",
                    )
        yield from self._check_nesting(module, info, facts, order)

    # ------------------------------------------------------------------
    # lock ordering
    # ------------------------------------------------------------------
    def _declared_order(
        self, index: ProjectIndex
    ) -> Tuple[Tuple[str, ...], List[Finding]]:
        """The single declared global lock order, plus conflicts found."""
        declarations = index.declared_lock_orders()
        findings: List[Finding] = []
        if not declarations:
            return (), findings
        first_joined, first_order, _ = declarations[0]
        for joined, _, module in declarations[1:]:
            if joined != first_joined:
                findings.append(
                    self.project_finding(
                        module,
                        module.tree,
                        f"conflicting lock-order declaration {joined!r}; "
                        f"the project-wide order is {first_joined!r} — "
                        "declare it once (or identically everywhere)",
                    )
                )
        return first_order, findings

    def _check_nesting(
        self,
        module: ModuleInfo,
        info: ClassInfo,
        facts: Dict[str, _MethodFacts],
        order: Tuple[str, ...],
    ) -> Iterator[Finding]:
        """Validate nested acquisitions against the declared order.

        Covers lexical nesting plus one call hop: acquiring inside a
        ``self.m(...)`` call made while a lock is held.
        """
        acquired_by_method: Dict[str, Set[str]] = {
            name: {lock for lock, _, _ in method_facts.acquisitions}
            for name, method_facts in facts.items()
        }
        pairs: List[Tuple[str, str, ast.AST]] = []
        for name, method_facts in facts.items():
            for lock, node, held_before in method_facts.acquisitions:
                for outer in sorted(held_before):
                    if outer != lock:
                        pairs.append((outer, lock, node))
            for callee, held in method_facts.self_calls:
                for inner in sorted(acquired_by_method.get(callee, set())):
                    for outer in sorted(held):
                        if outer != inner:
                            pairs.append((outer, inner, info.methods[callee]))
        seen: Set[Tuple[str, str]] = set()
        for outer, inner, node in pairs:
            outer_name = f"{info.name}.{outer}"
            inner_name = f"{info.name}.{inner}"
            if (outer_name, inner_name) in seen:
                continue
            seen.add((outer_name, inner_name))
            if outer_name not in order or inner_name not in order:
                yield self.project_finding(
                    module,
                    node,
                    f"nested acquisition {outer_name} -> {inner_name} has "
                    "no declared lock-order; declare the global order with "
                    "a `lock-order=` directive",
                )
            elif order.index(outer_name) > order.index(inner_name):
                yield self.project_finding(
                    module,
                    node,
                    f"nested acquisition {outer_name} -> {inner_name} "
                    f"violates the declared lock order {'-> '.join(order)}",
                )
