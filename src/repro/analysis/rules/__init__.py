"""Rule modules; importing this package registers every rule.

One module per rule keeps each invariant's rationale, detection logic,
and edge cases reviewable in isolation.  New rules: add a module here,
decorate the class with :func:`repro.analysis.base.register_rule`, pick
the next free ``R0xx`` id, and document it in
``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.analysis.rules.clocks import DirectClockRule
from repro.analysis.rules.epochs import EpochDisciplineRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.frozen_types import FrozenValueTypeRule
from repro.analysis.rules.layering import ImportLayeringRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.picklable import ExecutorPicklabilityRule
from repro.analysis.rules.publish import PublishImmutabilityRule

__all__ = [
    "DirectClockRule",
    "EpochDisciplineRule",
    "ExceptionDisciplineRule",
    "ExecutorPicklabilityRule",
    "FloatEqualityRule",
    "FrozenValueTypeRule",
    "ImportLayeringRule",
    "LockDisciplineRule",
    "PublishImmutabilityRule",
]
