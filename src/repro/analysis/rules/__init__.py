"""Rule modules; importing this package registers every rule.

One module per rule keeps each invariant's rationale, detection logic,
and edge cases reviewable in isolation.  New rules: add a module here,
decorate the class with :func:`repro.analysis.base.register_rule`, pick
the next free ``R0xx`` id, and document it in
``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.analysis.rules.clocks import DirectClockRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.frozen_types import FrozenValueTypeRule
from repro.analysis.rules.layering import ImportLayeringRule

__all__ = [
    "DirectClockRule",
    "ExceptionDisciplineRule",
    "FloatEqualityRule",
    "FrozenValueTypeRule",
    "ImportLayeringRule",
]
