"""R003 — library code raises only :mod:`repro.common.errors` types.

Callers embed this library behind one contract: every deliberate
failure derives from :class:`repro.common.errors.ReproError`, so a
single ``except ReproError`` protects a serving loop.  A stray ``raise
ValueError`` punches through that contract, and a blanket ``except
Exception:`` handler swallows programming errors (including the typed
ones) instead of letting them surface.  The rule flags raises of
builtin exception types and broad handlers that do not re-raise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import FileContext, Rule, RuleScope, register_rule
from repro.analysis.findings import Finding

#: Builtin exception names that library code must not raise directly.
BANNED_RAISES = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Handler types too broad to catch without re-raising.
BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The bare name being raised (``ValueError`` / ``ValueError(...)``)."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise``."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    """Names of the exception types a handler catches (bare = '')."""
    if handler.type is None:
        yield ""
        return
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for item in types:
        if isinstance(item, ast.Name):
            yield item.id


@register_rule
class ExceptionDisciplineRule(Rule):
    """Keep the single-catch contract of ``repro.common.errors`` intact.

    Flags ``raise`` of a builtin exception type by bare name, bare
    ``except:`` clauses, and ``except Exception:`` /
    ``except BaseException:`` handlers whose body never re-raises.
    ``SystemExit``, ``KeyboardInterrupt``, and ``NotImplementedError``
    stay allowed (process control and abstract methods are not library
    failures).
    """

    rule_id = "R003"
    title = "raise only repro.common.errors types; no swallowed broad excepts"
    fix_hint = (
        "raise a subclass of repro.common.errors.ReproError, or narrow "
        "the except clause (re-raise if cleanup genuinely needs Exception)"
    )
    scope = RuleScope()  # the whole repro tree

    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Flag builtin raises and swallowing broad except handlers."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in BANNED_RAISES:
                    yield context.finding(
                        self,
                        node,
                        f"raise of builtin {name}; library errors must "
                        "derive from repro.common.errors.ReproError",
                    )
            elif isinstance(node, ast.ExceptHandler):
                for name in _handler_names(node):
                    if name == "" and not _reraises(node):
                        yield context.finding(
                            self, node, "bare except: swallows all errors"
                        )
                    elif name in BROAD_HANDLERS and not _reraises(node):
                        yield context.finding(
                            self,
                            node,
                            f"except {name}: without re-raise swallows "
                            "programming errors",
                        )
