"""R004 — value-type dataclasses must be ``@dataclass(frozen=True)``.

Regions, locations, rule ids, and measure records are used as dict
keys, set members, and sort keys throughout the EPS index; cut-location
domination (Definition 8) silently assumes a location never changes
after it is indexed.  A mutable dataclass in these layers is either an
unhashable landmine or — worse, when a ``__hash__`` sneaks in — a key
whose hash can rot inside a dict.  Freezing is the default; a genuine
mutable accumulator (e.g. :class:`repro.common.timing.PhaseTimer`)
documents itself with a suppression directive carrying the rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import FileContext, Rule, RuleScope, register_rule
from repro.analysis.findings import Finding


def _is_dataclass_decorator(node: ast.expr) -> bool:
    """Match ``@dataclass`` and ``@dataclass(...)`` (also dotted forms)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return isinstance(node, ast.Name) and node.id == "dataclass"


def _has_frozen_true(node: ast.expr) -> bool:
    """True when the decorator passes ``frozen=True``."""
    if not isinstance(node, ast.Call):
        return False
    for keyword in node.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


@register_rule
class FrozenValueTypeRule(Rule):
    """Dataclasses in the value-type layers default to immutable.

    Flags every ``@dataclass`` in ``common``, ``data``, ``mining``,
    ``core``, and ``maras`` that does not pass ``frozen=True``.
    Deliberate mutable accumulators suppress the rule on the decorator
    line with a comment explaining why mutation is safe there.
    """

    rule_id = "R004"
    title = "value-type dataclasses must be frozen"
    fix_hint = (
        "add frozen=True (hashability and safe dict-key use follow), or "
        "suppress with a rationale if the class is a mutable accumulator"
    )
    scope = RuleScope(
        include=(
            "repro/common/",
            "repro/data/",
            "repro/mining/",
            "repro/core/",
            "repro/maras/",
        )
    )

    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Flag ``@dataclass`` decorators that omit ``frozen=True``."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if not _is_dataclass_decorator(decorator):
                    continue
                if not _has_frozen_true(decorator):
                    yield context.finding(
                        self,
                        decorator,
                        f"dataclass {node.name!r} is not frozen=True",
                    )
                break
