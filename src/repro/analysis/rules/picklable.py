"""R009 — work shipped to ``run_ordered`` must survive pickling.

:func:`repro.common.executors.run_ordered` is strategy-polymorphic: the
same call runs serially, on a thread pool, or on a **process** pool
depending on :class:`ExecutorConfig`.  Serial and threaded runs happily
accept lambdas, closures, and bound methods — and then the one user who
flips ``strategy="process"`` gets a ``PicklingError`` from the depths of
``multiprocessing`` (or worse, a worker that silently re-imports half
the service).  The bit-identical parallel build guarantee (builder
docstring) only holds because every shipped unit is a module-level def
applied to frozen work items.

The rule pins that contract at every call site:

* the *function* argument must resolve to a **module-level def** — a
  lambda, a def nested in the calling function (a closure), or a
  ``self.method`` bound reference is an error;
* elements of the *items* argument whose constructors resolve in the
  project index must be frozen dataclasses or NamedTuples (the
  picklable value types); unresolvable expressions pass — the rule
  flags only provable violations.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import ProjectRule, RuleScope, register_rule
from repro.analysis.dataflow import reaching_definition
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ClassInfo,
    FunctionNode,
    ModuleInfo,
    ProjectIndex,
)

#: The executor entry point whose arguments this rule audits.
EXECUTOR_ENTRY = "run_ordered"


def _called_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _nested_def_names(function: FunctionNode) -> FrozenSet[str]:
    """Names of defs nested inside *function* (closure candidates)."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return frozenset(names)


@register_rule
class ExecutorPicklabilityRule(ProjectRule):
    """``run_ordered`` receives module-level defs and frozen work items.

    The process-pool strategy pickles both; lambdas, closures, bound
    methods, and mutable work units break only under that strategy, far
    from the code that introduced them.
    """

    rule_id = "R009"
    title = "run_ordered work must be module-level defs + frozen items"
    fix_hint = (
        "hoist the callable to a module-level def and carry its context "
        "in the work item; make work items frozen dataclasses or "
        "NamedTuples"
    )
    scope = RuleScope()  # every run_ordered call site, tree-wide

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Audit every ``run_ordered(function, items, ...)`` call site."""
        for module in sorted(
            index.modules.values(), key=lambda m: m.logical_path
        ):
            for _owner, function in _functions_of(module):
                nested = _nested_def_names(function)
                for node in ast.walk(function):
                    if not isinstance(node, ast.Call):
                        continue
                    if _called_name(node.func) != EXECUTOR_ENTRY:
                        continue
                    if len(node.args) < 2:
                        continue
                    yield from self._check_function_arg(
                        index, module, node.args[0], nested
                    )
                    yield from self._check_items_arg(
                        index, module, function, node.args[1], node.lineno
                    )

    # ------------------------------------------------------------------
    # the callable
    # ------------------------------------------------------------------
    def _check_function_arg(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        func_arg: ast.expr,
        nested_defs: FrozenSet[str],
    ) -> Iterator[Finding]:
        if isinstance(func_arg, ast.Lambda):
            yield self.project_finding(
                module,
                func_arg,
                "lambda passed to run_ordered; lambdas cannot be pickled "
                "to process-pool workers — hoist to a module-level def",
            )
            return
        if (
            isinstance(func_arg, ast.Attribute)
            and isinstance(func_arg.value, ast.Name)
            and func_arg.value.id == "self"
        ):
            yield self.project_finding(
                module,
                func_arg,
                f"bound method self.{func_arg.attr} passed to run_ordered; "
                "bound methods drag their instance through pickle — hoist "
                "to a module-level def taking the work item",
            )
            return
        if isinstance(func_arg, ast.Name) and func_arg.id in nested_defs:
            yield self.project_finding(
                module,
                func_arg,
                f"nested def {func_arg.id!r} passed to run_ordered; "
                "closures cannot be pickled to process-pool workers — "
                "hoist it to module level",
            )

    # ------------------------------------------------------------------
    # the work items
    # ------------------------------------------------------------------
    def _check_items_arg(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        function: FunctionNode,
        items_arg: ast.expr,
        call_line: int,
    ) -> Iterator[Finding]:
        resolved = items_arg
        if isinstance(items_arg, ast.Name):
            definition = reaching_definition(
                function, items_arg.id, call_line
            )
            if definition is None:
                return
            resolved = definition
        for element in _element_exprs(resolved):
            if isinstance(element, ast.Lambda):
                yield self.project_finding(
                    module,
                    element,
                    "lambda work item passed to run_ordered; work items "
                    "must be picklable values",
                )
                continue
            if not isinstance(element, ast.Call):
                continue
            name = _called_name(element.func)
            if name is None:
                continue
            info = index.resolve_class(name)
            if info is not None and not info.is_immutable_carrier:
                yield self.project_finding(
                    module,
                    element,
                    f"run_ordered work items are {name} instances, which "
                    "is neither a frozen dataclass nor a NamedTuple; "
                    "workers must receive immutable, picklable units",
                )


def _element_exprs(container: ast.expr) -> List[ast.expr]:
    """Element expressions of a list/tuple display or comprehension."""
    if isinstance(container, (ast.List, ast.Tuple, ast.Set)):
        return list(container.elts)
    if isinstance(container, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return [container.elt]
    return []


def _functions_of(
    module: ModuleInfo,
) -> Iterator[Tuple[Optional[ClassInfo], FunctionNode]]:
    """Every (owning class or None, def) in one module."""
    for function in module.functions.values():
        yield None, function
    for info in module.classes.values():
        for method in info.methods.values():
            yield info, method
