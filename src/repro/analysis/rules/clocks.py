"""R005 — no direct wall-clock reads outside the timing layer.

Phase timings feed the paper's Figure-9 offline/online breakdowns; they
are comparable across runs only because every measurement flows through
:class:`repro.common.timing.PhaseTimer` / ``stopwatch`` and can be
faked in tests.  A stray ``time.perf_counter()`` in library code
produces unmockable, untracked timings and couples pure algorithms to
the wall clock.  Benchmarks keep direct access — they *are* the clock
consumers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import FileContext, Rule, RuleScope, register_rule
from repro.analysis.findings import Finding

#: Clock callables that must stay confined to the timing module.
CLOCK_NAMES = frozenset(
    {
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "time",
        "time_ns",
    }
)


@register_rule
class DirectClockRule(Rule):
    """Route every wall-clock read through ``repro.common.timing``.

    Flags ``time.<clock>()`` calls and ``from time import <clock>``
    anywhere in the ``repro`` tree except ``repro/common/timing.py``;
    ``benchmarks/`` trees are exempt by scope when linting a whole
    repository.
    """

    rule_id = "R005"
    title = "no direct time.time()/perf_counter() outside common/timing"
    fix_hint = (
        "use repro.common.timing.PhaseTimer or stopwatch() so timings "
        "stay attributable and mockable"
    )
    scope = RuleScope(exclude=("repro/common/timing.py",))

    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Flag clock calls and clock imports from the ``time`` module."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CLOCK_NAMES
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield context.finding(
                        self,
                        node,
                        f"direct clock read time.{func.attr}()",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "time":
                    clocks = sorted(
                        alias.name
                        for alias in node.names
                        if alias.name in CLOCK_NAMES
                    )
                    if clocks:
                        yield context.finding(
                            self,
                            node,
                            "importing clock(s) "
                            + ", ".join(clocks)
                            + " from time",
                        )
