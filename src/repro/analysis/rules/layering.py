"""R002 — the import-layering contract.

The offline/online split of the paper maps onto a strict package
layering (see :mod:`repro.analysis.layers`).  Upward or cross imports
create cycles that break incremental builds, make the baselines dishonest
(they must not reuse TARA internals they are benchmarked against), and
couple the data layer to analytics it should know nothing about.  The
rule resolves every ``import repro...`` / ``from repro...`` statement —
including ones nested inside functions, the classic way layering
violations hide — against the declared layer map.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.base import FileContext, Rule, RuleScope, register_rule
from repro.analysis.findings import Finding
from repro.analysis.layers import (
    LAYER_CHAIN,
    layer_of_logical_path,
    layer_of_module,
    rank_of,
)


@register_rule
class ImportLayeringRule(Rule):
    """Imports must flow down the declared layer chain.

    A module may import from its own layer or any strictly lower rank;
    sibling layers at the same rank (``data``/``analysis``,
    ``baselines``/``maras``) may not import each other.
    """

    rule_id = "R002"
    title = "import-layering contract (no upward or cross-layer imports)"
    fix_hint = (
        "move the shared code into a lower layer or invert the "
        f"dependency; contract: {LAYER_CHAIN}"
    )
    scope = RuleScope()  # the whole repro tree

    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Resolve every absolute ``repro`` import against the layer map."""
        source_layer = layer_of_logical_path(context.logical_path)
        source_rank = rank_of(source_layer)
        if source_layer is None or source_rank is None:
            return
        for node, module in _imported_modules(tree):
            target_layer = layer_of_module(module)
            if target_layer is None or target_layer == source_layer:
                continue
            target_rank = rank_of(target_layer)
            if target_rank is None:
                yield context.finding(
                    self,
                    node,
                    f"import of {module!r} targets undeclared layer "
                    f"{target_layer!r}; add it to repro.analysis.layers",
                )
            elif target_rank >= source_rank:
                direction = "cross" if target_rank == source_rank else "upward"
                yield context.finding(
                    self,
                    node,
                    f"{direction} import: {source_layer!r} (rank {source_rank}) "
                    f"may not import {module!r} ({target_layer!r}, "
                    f"rank {target_rank})",
                )


def _imported_modules(tree: ast.Module) -> Iterator[Tuple[ast.stmt, str]]:
    """Yield ``(node, dotted_module)`` for every absolute repro import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            # Relative imports (level > 0) stay within the source layer's
            # package by construction here, so only absolute ones matter.
            if node.level == 0 and node.module is not None:
                if node.module == "repro" or node.module.startswith("repro."):
                    yield node, node.module
