"""R001 — no float equality/inequality comparisons in exact layers.

The EPS index derives region boundaries from *exact* rational
arithmetic: parametric locations are fractions of the underlying
integer counts (``src/repro/core/locations.py``), and cut-location
domination assumes two equal settings compare equal bit-for-bit.  A
``measure == 0.0``-style guard silently breaks that promise the moment
a value arrives via floating-point division — boundaries drift by one
ULP and a region absorbs or leaks rules.  Compare the underlying
integer counts instead (``n_x == n_xy``), or use an explicit,
documented epsilon when a quantity is inherently float-valued.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import FileContext, Rule, RuleScope, register_rule
from repro.analysis.findings import Finding


def _is_float_literal(node: ast.expr) -> bool:
    """True for ``0.0``-style literals, including negated ones."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule
class FloatEqualityRule(Rule):
    """Float equality corrupts exact region boundaries.

    Flags ``==`` / ``!=`` comparisons in which any operand is a float
    literal, inside the exact-arithmetic layers (``common``, ``core``,
    ``mining``, ``maras``).  Ordering comparisons (``<``, ``<=``) are
    fine — they are how epsilon guards are written.
    """

    rule_id = "R001"
    title = "no float equality/inequality comparisons in exact layers"
    fix_hint = (
        "compare the underlying integer counts, or use an explicit "
        "epsilon guard (see repro.common.stats)"
    )
    scope = RuleScope(
        include=(
            "repro/common/",
            "repro/core/",
            "repro/mining/",
            "repro/maras/",
        )
    )

    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Flag ``==``/``!=`` chains with a float-literal operand."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield context.finding(
                        self,
                        node,
                        f"float {symbol} comparison against a float literal",
                    )
                    break
