"""R008 — epoch discipline: purge-only append hooks, equality-only tags.

The serving layer's invalidation protocol (service docstring, point 3)
is built on two facts about epochs:

1. **Append listeners retire, they never add.**  The subscribe hook
   fires inside :meth:`IncrementalTara.append_batch` while the builder's
   caller still holds partially published state; a listener that inserts
   into the cache can resurrect an entry tagged with the *previous*
   epoch one line after the purge dropped it, and the stale answer then
   serves forever.  Purging is idempotent and safe; inserting is not.

2. **Epoch tags are identities, not a timeline.**  An entry is valid
   iff its tag *equals* the current epoch (or is ``EPOCH_FREE``).
   Ordering comparisons (``entry.epoch < epoch``) encode the accidental
   fact that epochs are monotonically increasing window counts — an
   assumption that breaks the moment epochs recycle or fork.  Equality
   survives any epoch scheme; ``<`` does not.

3. **Epoch relationships live inside** :class:`repro.core.Snapshot`.
   Since PR 8 readers pin an immutable snapshot through a refcounted
   handle, so correctness never depends on comparing one epoch against
   another anywhere else: a comparison between *two* epoch values in
   service/serve code is a re-derivation of the pre-snapshot
   "re-check after the epoch moved" protocol, which the handle API
   made unnecessary and unsound.  Comparing one epoch value against an
   ALL-UPPERCASE sentinel (``epoch != EPOCH_FREE``) stays legal — that
   is classification, not a relationship between epochs.

The rule therefore flags, within the serving layers:

* any ordering comparison (``<``, ``<=``, ``>``, ``>=``) whose operand
  mentions an epoch (a name or attribute containing ``epoch``);
* any equality comparison (``==``, ``!=``) where two or more operands
  are epoch-valued (epoch-ish and not an ALL-UPPERCASE sentinel),
  unless the comparison sits lexically inside a class named
  ``Snapshot`` — the one place epoch identity is allowed to matter;
* any insert-like operation — a call to ``put``/``insert``/
  ``setdefault``/``store`` or a subscript assignment — reachable from a
  callback passed to ``subscribe(...)``, following ``self.`` method
  calls and attribute-typed collaborators up to three hops.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.base import ProjectRule, RuleScope, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ClassInfo,
    FunctionNode,
    ModuleInfo,
    ProjectIndex,
)

#: Method names that add an entry to a keyed container.
INSERT_CALLS = frozenset({"put", "insert", "setdefault", "store"})

#: How many self-call / collaborator hops the listener walk follows.
MAX_HOOK_DEPTH = 3

_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
_EQUALITY_OPS = (ast.Eq, ast.NotEq)


def _mentions_epoch(node: ast.expr) -> bool:
    """True when the expression names anything epoch-ish."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "epoch" in child.id.lower():
            return True
        if isinstance(child, ast.Attribute) and "epoch" in child.attr.lower():
            return True
    return False


def _epoch_valued(node: ast.expr) -> bool:
    """True when the expression carries a live epoch value.

    ALL-UPPERCASE epoch-ish identifiers (``EPOCH_FREE``) are sentinels
    by the repo's constant convention, not epoch values — comparing
    against one classifies an entry rather than relating two epochs.
    """
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Name)
            and "epoch" in child.id.lower()
            and not child.id.isupper()
        ):
            return True
        if (
            isinstance(child, ast.Attribute)
            and "epoch" in child.attr.lower()
            and not child.attr.isupper()
        ):
            return True
    return False


def _snapshot_class_nodes(tree: ast.Module) -> Set[int]:
    """ids of every node lexically inside a class named ``Snapshot``."""
    inside: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Snapshot":
            inside.update(id(child) for child in ast.walk(node))
    return inside


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register_rule
class EpochDisciplineRule(ProjectRule):
    """Append hooks only purge; epoch tags compare only by equality.

    Insertions inside a subscribe callback race the epoch transition
    they run under; ordering comparisons bake in monotonic epochs the
    MVCC roadmap retires.  Both are one-line mistakes that pass every
    single-threaded test.
    """

    rule_id = "R008"
    title = "epoch tags are equality-only; append hooks purge-only"
    fix_hint = (
        "compare epochs with ==/!= (validity is identity, not age); "
        "move insertions out of subscribe callbacks — listeners may "
        "only purge/retire entries"
    )
    scope = RuleScope(
        include=(
            "repro/service/",
            "repro/serve/",
            "repro/core/incremental.py",
            "repro/core/snapshot.py",
        )
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Flag ordering comparisons, then walk subscribe callbacks."""
        for module in sorted(
            index.modules.values(), key=lambda m: m.logical_path
        ):
            yield from self._check_comparisons(module)
            yield from self._check_subscriptions(index, module)

    # ------------------------------------------------------------------
    # equality-only comparisons
    # ------------------------------------------------------------------
    def _check_comparisons(self, module: ModuleInfo) -> Iterator[Finding]:
        snapshot_nodes = _snapshot_class_nodes(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(op, _ORDERING_OPS) for op in node.ops
            ) and any(_mentions_epoch(operand) for operand in operands):
                yield self.project_finding(
                    module,
                    node,
                    "ordering comparison on an epoch tag; epoch validity "
                    "is identity (==/!=), not age — ordering breaks when "
                    "epochs recycle or fork",
                )
                continue
            if (
                any(isinstance(op, _EQUALITY_OPS) for op in node.ops)
                and sum(1 for op in operands if _epoch_valued(op)) >= 2
                and id(node) not in snapshot_nodes
            ):
                yield self.project_finding(
                    module,
                    node,
                    "equality comparison between two epoch values outside "
                    "class Snapshot; snapshot-handle discipline keeps "
                    "epoch relationships inside Snapshot — pin a handle "
                    "instead of re-checking epochs (sentinel checks like "
                    "`epoch != EPOCH_FREE` remain fine)",
                )

    # ------------------------------------------------------------------
    # subscribe callbacks
    # ------------------------------------------------------------------
    def _check_subscriptions(
        self, index: ProjectIndex, module: ModuleInfo
    ) -> Iterator[Finding]:
        for owner, function in _functions_of(module):
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    not isinstance(node.func, ast.Attribute)
                    or node.func.attr != "subscribe"
                    or not node.args
                ):
                    continue
                callback = node.args[0]
                yield from self._check_callback(
                    index, module, owner, callback
                )

    def _check_callback(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        callback: ast.expr,
    ) -> Iterator[Finding]:
        """Resolve one subscribe argument and walk what it runs."""
        if isinstance(callback, ast.Lambda):
            yield from self._walk_hook(
                index, module, owner, callback.body, "lambda listener", 0, set()
            )
            return
        attr = _self_attr(callback)
        if attr is not None and owner is not None:
            method = owner.methods.get(attr)
            if method is not None:
                yield from self._walk_hook(
                    index,
                    module,
                    owner,
                    method,
                    f"{owner.name}.{attr}",
                    0,
                    set(),
                )
            return
        if isinstance(callback, ast.Name):
            resolved = index.resolve_function(module, callback.id)
            if resolved is not None:
                target_module, function = resolved
                yield from self._walk_hook(
                    index,
                    target_module,
                    None,
                    function,
                    callback.id,
                    0,
                    set(),
                )

    def _walk_hook(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        body: ast.AST,
        hook_name: str,
        depth: int,
        visited: Set[int],
    ) -> Iterator[Finding]:
        """Flag insert-like operations reachable from an append hook."""
        if depth > MAX_HOOK_DEPTH or id(body) in visited:
            return
        visited.add(id(body))
        for node in ast.walk(body):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in INSERT_CALLS:
                    yield self.project_finding(
                        module,
                        node,
                        f"append listener {hook_name} inserts via "
                        f".{node.func.attr}(...); subscribe callbacks may "
                        "only purge — an insert here races the epoch "
                        "transition it runs under",
                    )
                    continue
                yield from self._walk_callee(
                    index, module, owner, node.func, hook_name, depth, visited
                )
            targets = _store_targets(node)
            for target in targets:
                if isinstance(target, ast.Subscript):
                    yield self.project_finding(
                        module,
                        target,
                        f"append listener {hook_name} stores into a "
                        "container by key; subscribe callbacks may only "
                        "purge, never insert",
                    )

    def _walk_callee(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        func: ast.Attribute,
        hook_name: str,
        depth: int,
        visited: Set[int],
    ) -> Iterator[Finding]:
        """Follow ``self.m(...)`` and ``self.attr.m(...)`` one hop down."""
        if owner is None:
            return
        attr = _self_attr(func)
        if attr is not None:
            method = owner.methods.get(attr)
            if method is not None:
                yield from self._walk_hook(
                    index, module, owner, method, hook_name, depth + 1, visited
                )
            return
        receiver = _self_attr(func.value)
        if receiver is None:
            return
        class_name = owner.attr_classes.get(receiver)
        if class_name is None:
            return
        collaborator = index.resolve_class(class_name)
        if collaborator is None:
            return
        method = collaborator.methods.get(func.attr)
        if method is None:
            return
        target_module = index.modules.get(collaborator.module)
        if target_module is None:
            return
        yield from self._walk_hook(
            index,
            target_module,
            collaborator,
            method,
            hook_name,
            depth + 1,
            visited,
        )


def _store_targets(node: ast.AST) -> List[ast.expr]:
    """Assignment targets of *node*, for store-into-container checks."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _functions_of(
    module: ModuleInfo,
) -> Iterator[Tuple[Optional[ClassInfo], FunctionNode]]:
    """Every (owning class or None, def) in one module."""
    for function in module.functions.values():
        yield None, function
    for info in module.classes.values():
        for method in info.methods.values():
            yield info, method
