"""The declared import-layering contract of the ``repro`` package.

The architecture is a strict layering (DESIGN.md)::

    _version -> common -> {data, analysis} -> storage -> mining -> core
             -> service -> serve -> {baselines, maras} -> datagen
             -> bench -> cli

A module may import from its own layer or from any *strictly lower*
rank.  Layers sharing a rank (``data``/``analysis``, and the two rule
consumers ``baselines``/``maras``) are siblings: neither may import the
other, which keeps the baselines honest (they must not peek at TARA
internals' siblings) and keeps the linter importable everywhere.

``storage`` is the one layer whose name differs from its directory: it
lives at ``repro/core/storage/`` (it is core's persistence substrate
and has no meaning outside it) but ranks *below* ``mining`` and
``core`` — the container codec/writer/reader must stay importable
without dragging in mining or query machinery, and core calls down
into it, never the reverse.  The mapping functions below special-case
that subtree.

``service`` (the online serving layer: region-keyed query cache and
metrics) sits directly above ``core`` — it wraps the explorer and must
know nothing about data generation or benchmarking.  ``serve`` (the
asyncio network tier: wire protocol, request coalescing, HTTP front
door) sits directly above ``service`` — it speaks sockets and JSON but
must not know how workloads are generated or benchmarked.  ``datagen``
sits above ``maras`` because the FAERS generator plants known
interactions from the MARAS reference knowledge base; ``bench`` (the
``repro bench`` / ``bench-online`` / ``bench-serve`` perf harnesses)
builds workloads from ``datagen`` and drives the service and serve
layers from above; the CLI and the package root sit on top and may
import anything.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Layer name -> rank.  Imports must flow from higher ranks to lower.
LAYER_RANKS: Dict[str, int] = {
    "_version": 0,
    "common": 1,
    "data": 2,
    "analysis": 2,
    "storage": 3,
    "mining": 4,
    "core": 5,
    "service": 6,
    "serve": 7,
    "baselines": 8,
    "maras": 8,
    "datagen": 9,
    "bench": 10,
    "cli": 11,
    # Entry-point modules sit above everything, including the CLI.
    "__init__": 12,
    "__main__": 12,
}

#: Human-readable rendering of the contract, used in findings and docs.
LAYER_CHAIN = (
    "common -> {data, analysis} -> storage -> mining -> core -> service "
    "-> serve -> {baselines, maras} -> datagen -> bench -> cli"
)


def layer_of_logical_path(logical_path: str) -> Optional[str]:
    """Map ``repro/<layer>/...`` or ``repro/<module>.py`` to a layer name.

    Returns ``None`` for paths outside the ``repro`` package (the
    layering rule then does not apply).
    """
    parts = logical_path.split("/")
    if not parts or parts[0] != "repro" or len(parts) < 2:
        return None
    if len(parts) == 2:  # a top-level module such as repro/cli.py
        name = parts[1]
        return name[:-3] if name.endswith(".py") else name
    if parts[1] == "core" and parts[2] == "storage":
        return "storage"
    return parts[1]


def layer_of_module(module_name: str) -> Optional[str]:
    """Map a dotted import target (``repro.core.archive``) to its layer."""
    parts = module_name.split(".")
    if not parts or parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "__init__"
    if len(parts) >= 3 and parts[1] == "core" and parts[2] == "storage":
        return "storage"
    return parts[1]


def rank_of(layer: Optional[str]) -> Optional[int]:
    """Rank of a layer name; ``None`` for unknown/out-of-tree layers."""
    if layer is None:
        return None
    return LAYER_RANKS.get(layer)
