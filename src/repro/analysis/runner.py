"""Walking, parsing, rule dispatch, and suppression filtering.

The runner owns everything rules should not care about: discovering
``.py`` files, mapping filesystem paths to logical ``repro/...`` paths,
parsing, collecting findings, filtering them through the suppression
index, and aggregating the result into a
:class:`~repro.analysis.findings.LintReport`.

Two rule families dispatch differently:

* **per-file rules** run once per parsed module, exactly as in the
  original runner;
* **project rules** (:class:`~repro.analysis.base.ProjectRule`) run
  once per invocation over a shared
  :class:`~repro.analysis.project.ProjectIndex` — every module parsed
  a single time — and their findings are filtered through the *owning
  module's* suppression index and the rule's scope, so directives work
  identically for both families.

A rule that raises does not abort the run: the exception is captured
as a :class:`~repro.analysis.findings.RuleCrash` (with traceback) and
the report exits 3, so CI can distinguish "lint found problems" (1)
from "lint itself is broken" (3).
"""

from __future__ import annotations

import ast
import traceback
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.base import FileContext, ProjectRule, Rule, all_rules
from repro.analysis.findings import Finding, LintReport, RuleCrash
from repro.analysis.project import (
    ModuleInfo,
    ProjectIndex,
    build_index,
    load_cached_index,
    store_cached_index,
)
from repro.analysis.suppressions import parse_suppressions
from repro.common.errors import ValidationError

PathLike = Union[str, Path]

#: Directory names never descended into while walking.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def logical_path_of(path: Path) -> Optional[str]:
    """Map a filesystem path to its ``repro/...`` logical path.

    The logical path anchors scopes and the layer map.  It is derived
    from the *last* ``repro`` component so the rule set works no matter
    where the tree is checked out (``src/repro/...``, an installed
    site-packages copy, or a test fixture that recreates the layout).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return None


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* (files pass through)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise ValidationError(f"lint target does not exist: {path}")


def split_rules(
    rules: Sequence[Rule],
) -> Tuple[List[Rule], List[ProjectRule]]:
    """Partition *rules* into (per-file rules, project rules)."""
    file_rules: List[Rule] = []
    project_rules: List[ProjectRule] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            project_rules.append(rule)
        else:
            file_rules.append(rule)
    return file_rules, project_rules


def _run_file_rules(
    rules: Sequence[Rule],
    tree: ast.Module,
    context: FileContext,
    crashes: List[RuleCrash],
) -> Tuple[List[Finding], int]:
    """Run per-file rules over one parsed module, capturing crashes."""
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.scope.contains(context.logical_path):
            continue
        try:
            produced = list(rule.check(tree, context))
        except Exception as error:  # repro-lint: disable=R003
            # Crash isolation is the runner's contract: one broken rule
            # must not hide the rest of the report; the exception is
            # captured and surfaced through the distinct exit code 3.
            crashes.append(
                RuleCrash(
                    rule_id=rule.rule_id,
                    path=context.display_path,
                    error=f"{type(error).__name__}: {error}",
                    traceback=traceback.format_exc(),
                )
            )
            continue
        for finding in produced:
            if context.suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def _filter_project_findings(
    rule: ProjectRule,
    produced: Sequence[Finding],
    index: ProjectIndex,
) -> Tuple[List[Finding], int]:
    """Apply scope and per-module suppressions to project findings.

    A project finding is attributed to the module whose display path it
    names; that module's suppression index and the rule's scope apply,
    so a cross-module rule cannot bypass the per-file contracts.
    """
    by_display: Dict[str, ModuleInfo] = {
        module.display_path: module for module in index.modules.values()
    }
    findings: List[Finding] = []
    suppressed = 0
    for finding in produced:
        module = by_display.get(finding.path)
        if module is not None:
            if not rule.scope.contains(module.logical_path):
                continue
            if module.suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed += 1
                continue
        findings.append(finding)
    return findings, suppressed


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    *,
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one source blob under the logical *path*.

    Returns ``(findings, suppressed_count)``.  *path* is the logical
    ``repro/...`` path used for scoping; *display_path* (default:
    *path*) is what findings print.  A syntax error becomes a single
    ``E001`` finding rather than an exception, so one broken file
    cannot hide the rest of the report.

    Project rules run against a single-module index, so self-contained
    fixtures exercise them exactly like per-file rules; rule crashes
    propagate (this is the library entry point — capture happens in
    :func:`lint_paths`).
    """
    shown = display_path if display_path is not None else path
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        finding = Finding(
            path=shown,
            line=error.lineno or 1,
            column=(error.offset or 1),
            rule_id="E001",
            message=f"file does not parse: {error.msg}",
            fix_hint="fix the syntax error; no rules ran on this file",
        )
        return [finding], 0
    suppressions = parse_suppressions(source)
    context = FileContext(
        logical_path=path,
        display_path=shown,
        source=source,
        suppressions=suppressions,
    )
    active = list(rules) if rules is not None else all_rules()
    file_rules, project_rules = split_rules(active)
    findings: List[Finding] = []
    suppressed = 0
    for rule in file_rules:
        if not rule.scope.contains(path):
            continue
        for finding in rule.check(tree, context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    if project_rules:
        index = build_index([(path, shown, source)])
        for rule in project_rules:
            project_findings, project_suppressed = _filter_project_findings(
                rule, list(rule.check_project(index)), index
            )
            findings.extend(project_findings)
            suppressed += project_suppressed
    return findings, suppressed


def lint_paths(
    paths: Iterable[PathLike],
    rules: Optional[Sequence[Rule]] = None,
    *,
    index_cache: Optional[PathLike] = None,
) -> LintReport:
    """Lint every Python file under *paths* and aggregate the report.

    When *index_cache* names a file, the whole-program index is loaded
    from it if the target files are byte-for-byte unchanged (size +
    mtime stamp) and stored back after a rebuild, so repeated
    invocations on an unchanged tree skip the project-indexing pass.
    """
    active = list(rules) if rules is not None else all_rules()
    file_rules, project_rules = split_rules(active)
    findings: List[Finding] = []
    crashes: List[RuleCrash] = []
    files_checked = 0
    suppressed_total = 0
    indexed: List[Tuple[str, str, str]] = []
    file_list: List[Path] = []
    for file_path in iter_python_files(paths):
        files_checked += 1
        logical = logical_path_of(file_path)
        if logical is None:
            # Outside any repro tree: no scope matches, nothing to check.
            continue
        source = file_path.read_text("utf-8")
        shown = str(file_path)
        file_list.append(file_path)
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=shown,
                    line=error.lineno or 1,
                    column=(error.offset or 1),
                    rule_id="E001",
                    message=f"file does not parse: {error.msg}",
                    fix_hint="fix the syntax error; no rules ran on this file",
                )
            )
            continue
        context = FileContext(
            logical_path=logical,
            display_path=shown,
            source=source,
            suppressions=parse_suppressions(source),
        )
        file_findings, suppressed = _run_file_rules(
            file_rules, tree, context, crashes
        )
        findings.extend(file_findings)
        suppressed_total += suppressed
        indexed.append((logical, shown, source))
    if project_rules and indexed:
        index = _load_or_build_index(indexed, file_list, index_cache)
        for rule in project_rules:
            try:
                produced = list(rule.check_project(index))
            except Exception as error:  # repro-lint: disable=R003
                # Crash isolation is the runner's contract: one broken
                # rule must not hide the rest of the report, so the
                # exception is captured (with traceback) and surfaced
                # through the distinct exit code 3 instead.
                crashes.append(
                    RuleCrash(
                        rule_id=rule.rule_id,
                        path="<project>",
                        error=f"{type(error).__name__}: {error}",
                        traceback=traceback.format_exc(),
                    )
                )
                continue
            project_findings, project_suppressed = _filter_project_findings(
                rule, produced, index
            )
            findings.extend(project_findings)
            suppressed_total += project_suppressed
    return LintReport(
        findings=tuple(sorted(findings)),
        files_checked=files_checked,
        suppressed_count=suppressed_total,
        crashes=tuple(sorted(crashes)),
    )


def _load_or_build_index(
    entries: Sequence[Tuple[str, str, str]],
    files: Sequence[Path],
    index_cache: Optional[PathLike],
) -> ProjectIndex:
    """The project index, through the optional on-disk cache."""
    if index_cache is None:
        return build_index(entries)
    cache_path = Path(index_cache)
    cached = load_cached_index(cache_path, files)
    if cached is not None:
        return cached
    index = build_index(entries)
    store_cached_index(cache_path, files, index)
    return index
