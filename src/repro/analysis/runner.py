"""Walking, parsing, rule dispatch, and suppression filtering.

The runner owns everything rules should not care about: discovering
``.py`` files, mapping filesystem paths to logical ``repro/...`` paths,
parsing, collecting findings, filtering them through the suppression
index, and aggregating the result into a
:class:`~repro.analysis.findings.LintReport`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.base import FileContext, Rule, all_rules
from repro.analysis.findings import Finding, LintReport
from repro.analysis.suppressions import parse_suppressions
from repro.common.errors import ValidationError

PathLike = Union[str, Path]

#: Directory names never descended into while walking.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def logical_path_of(path: Path) -> Optional[str]:
    """Map a filesystem path to its ``repro/...`` logical path.

    The logical path anchors scopes and the layer map.  It is derived
    from the *last* ``repro`` component so the rule set works no matter
    where the tree is checked out (``src/repro/...``, an installed
    site-packages copy, or a test fixture that recreates the layout).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return None


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* (files pass through)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise ValidationError(f"lint target does not exist: {path}")


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    *,
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one source blob under the logical *path*.

    Returns ``(findings, suppressed_count)``.  *path* is the logical
    ``repro/...`` path used for scoping; *display_path* (default:
    *path*) is what findings print.  A syntax error becomes a single
    ``E001`` finding rather than an exception, so one broken file
    cannot hide the rest of the report.
    """
    shown = display_path if display_path is not None else path
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        finding = Finding(
            path=shown,
            line=error.lineno or 1,
            column=(error.offset or 1),
            rule_id="E001",
            message=f"file does not parse: {error.msg}",
            fix_hint="fix the syntax error; no rules ran on this file",
        )
        return [finding], 0
    suppressions = parse_suppressions(source)
    context = FileContext(
        logical_path=path,
        display_path=shown,
        source=source,
        suppressions=suppressions,
    )
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    suppressed = 0
    for rule in active:
        if not rule.scope.contains(path):
            continue
        for finding in rule.check(tree, context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_paths(
    paths: Iterable[PathLike],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every Python file under *paths* and aggregate the report."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    files_checked = 0
    suppressed_total = 0
    for file_path in iter_python_files(paths):
        files_checked += 1
        logical = logical_path_of(file_path)
        if logical is None:
            # Outside any repro tree: no scope matches, nothing to check.
            continue
        source = file_path.read_text("utf-8")
        file_findings, suppressed = lint_source(
            source, logical, active, display_path=str(file_path)
        )
        findings.extend(file_findings)
        suppressed_total += suppressed
    return LintReport(
        findings=tuple(sorted(findings)),
        files_checked=files_checked,
        suppressed_count=suppressed_total,
    )
