"""Static analysis for the TARA reproduction: ``repro lint``.

The EPS index is only correct because the codebase keeps a handful of
promises that ordinary tests cannot see from the outside: parametric
locations are exact fractions of integer counts (never floats), cut
locations are immutable value types, the archive codec round-trips, and
layering stays acyclic.  This package turns those promises into
machine-checked invariants: an AST-based linter with project-specific
rules, each carrying a stable ID, a rationale, a fix hint, and explicit
per-line / per-file suppression syntax.

Rules
-----
R001  no float equality/inequality comparisons in exact-arithmetic layers
R002  import-layering contract (``common -> data -> mining -> core ->
      {baselines, maras} -> datagen -> bench -> cli``)
R003  library code raises only :mod:`repro.common.errors` types and never
      swallows ``except Exception:``
R004  value-type dataclasses must be ``@dataclass(frozen=True)``
R005  no direct wall-clock reads outside :mod:`repro.common.timing`

Entry points: the ``repro lint`` CLI subcommand and
``python -m repro.analysis``; the programmatic API is
:func:`repro.analysis.runner.lint_paths`.

Suppression syntax (see ``docs/static_analysis.md``)::

    risky_line()  # repro-lint: disable=R001
    # repro-lint: disable-file=R004
"""

from __future__ import annotations

from repro.analysis.base import Rule, RuleScope, all_rules, get_rule
from repro.analysis.findings import Finding, LintReport
from repro.analysis.runner import lint_paths, lint_source

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "RuleScope",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
]
