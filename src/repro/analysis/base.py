"""Rule protocol, per-file context, and the rule registry.

Every rule is a small class with a stable ``rule_id`` (``R00x``), a
docstring carrying the rationale (surfaced by ``repro lint
--list-rules``), a ``fix_hint`` shown inline with findings, and a
``scope`` restricting which logical paths it audits.  Rules receive a
parsed :class:`ast.Module` plus a :class:`FileContext` and yield
:class:`~repro.analysis.findings.Finding` objects; suppression
filtering happens centrally in the runner so rules stay oblivious to
directives.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProjectIndex
from repro.analysis.suppressions import SuppressionIndex
from repro.common.errors import ValidationError


@dataclass(frozen=True)
class RuleScope:
    """Which logical paths a rule audits.

    ``include`` is a tuple of logical-path prefixes (``repro/core/``);
    an empty tuple means the whole ``repro`` tree.  ``exclude`` prefixes
    win over includes; exact file paths are expressed as full logical
    paths (``repro/common/timing.py``).
    """

    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def contains(self, logical_path: str) -> bool:
        """True when *logical_path* falls inside this scope."""
        for prefix in self.exclude:
            if logical_path == prefix or logical_path.startswith(prefix):
                return False
        if not self.include:
            return logical_path.startswith("repro/")
        return any(
            logical_path == prefix or logical_path.startswith(prefix)
            for prefix in self.include
        )


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may consult about the file under audit."""

    logical_path: str
    display_path: str
    source: str
    suppressions: SuppressionIndex

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Construct a finding for *node* with the rule's identity."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.display_path,
            line=line,
            column=column,
            rule_id=rule.rule_id,
            message=message,
            fix_hint=rule.fix_hint,
        )


class Rule(ABC):
    """Base class for all lint rules."""

    #: Stable identifier, referenced by suppressions — never reuse one.
    rule_id: str = ""
    #: One-line imperative summary shown by ``--list-rules``.
    title: str = ""
    #: Actionable remediation advice appended to every finding.
    fix_hint: str = ""
    #: Logical-path scope the rule audits.
    scope: RuleScope = RuleScope()

    @abstractmethod
    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file; must not mutate *tree*."""

    @property
    def rationale(self) -> str:
        """The rule's docstring — the 'why' behind the invariant."""
        return (self.__doc__ or "").strip()


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules see the shared :class:`~repro.analysis.project.ProjectIndex`
    — every module parsed once, with class attribute inventories, lock
    declarations, and the call graph — instead of one file at a time.
    The runner invokes :meth:`check_project` exactly once per lint run;
    findings are still filtered through each module's suppression index
    and the rule's :class:`RuleScope`, so the suppression and scoping
    contracts are identical to per-file rules.
    """

    def check(self, tree: ast.Module, context: FileContext) -> Iterator[Finding]:
        """Project rules do not run per file; the runner calls
        :meth:`check_project` instead."""
        return iter(())

    @abstractmethod
    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Yield findings over the whole indexed project."""

    def project_finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Construct a finding anchored at *node* inside *module*."""
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            fix_hint=self.fix_hint,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValidationError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValidationError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(select: Optional[Tuple[str, ...]] = None) -> List[Rule]:
    """Instantiate registered rules, optionally restricted to *select* ids."""
    # Importing the rules package populates the registry on first use.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    if select:
        unknown = sorted(set(select) - set(_REGISTRY))
        if unknown:
            known = ", ".join(sorted(_REGISTRY))
            raise ValidationError(
                f"unknown rule id(s) {', '.join(unknown)}; known: {known}"
            )
        return [_REGISTRY[rule_id]() for rule_id in sorted(set(select))]
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id; raises for unknown ids."""
    rules = all_rules((rule_id,))
    return rules[0]
