"""Conservative dataflow used by the cross-module rules.

Two facilities:

* **Reaching definitions** (:func:`reaching_definition`) — the lexically
  latest assignment to a name before a use, inside one function.  This
  is deliberately flow-*insensitive* across branches (the latest prior
  assignment wins), which is exactly conservative enough for the
  publish rule: the canonical freeze pattern ``x = [...]; x = tuple(x)``
  resolves to the tuple, while a bare mutable display reaching a sink
  still resolves to the display.
* **Mutability classification** (:func:`classify_mutability`) — a
  three-valued verdict for an expression: provably :data:`MUTABLE`
  (list/dict/set/bytearray displays, comprehensions, and their
  constructor calls), :data:`IMMUTABLE` (literals, tuples and
  frozensets of non-mutable elements, the exact-arithmetic whitelist,
  frozen-dataclass/NamedTuple constructors), or :data:`UNKNOWN`.  Calls
  into project functions resolve through the
  :class:`~repro.analysis.project.ProjectIndex` call graph (bounded
  depth, cycle-guarded): a function's verdict is the join of its
  ``return`` expressions, where *any* provably mutable return makes the
  call mutable — a value that *may* be a list must not reach a publish
  sink.

Only :data:`MUTABLE` verdicts produce findings; everything the
analysis cannot prove stays :data:`UNKNOWN` and passes.  That keeps the
rules quiet on sound-but-opaque code at the cost of missing hazards
hidden behind dynamic dispatch — the right trade for a self-hosting
gate.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from repro.analysis.project import (
    ClassInfo,
    FunctionNode,
    ModuleInfo,
    ProjectIndex,
)


class Mutability(enum.Enum):
    """Three-valued mutability verdict for an expression."""

    IMMUTABLE = "immutable"
    UNKNOWN = "unknown"
    MUTABLE = "mutable"


IMMUTABLE = Mutability.IMMUTABLE
UNKNOWN = Mutability.UNKNOWN
MUTABLE = Mutability.MUTABLE

#: Constructor calls that always yield mutable containers.
MUTABLE_CALLS: FrozenSet[str] = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "sorted",
    }
)

#: Constructor/value calls on the transitively-immutable whitelist.
IMMUTABLE_CALLS: FrozenSet[str] = frozenset(
    {
        "tuple",
        "frozenset",
        "int",
        "float",
        "bool",
        "str",
        "bytes",
        "complex",
        "range",
        "len",
        "abs",
        "Fraction",
        "Decimal",
    }
)

#: Maximum call-graph depth the classifier walks from a sink.
MAX_WALK_DEPTH = 5


@dataclass(frozen=True)
class EvalScope:
    """Where an expression is being evaluated.

    ``function`` provides the reaching-definition environment;
    ``owner`` (the enclosing class, if any) resolves ``self.*`` reads
    and ``self.method(...)`` calls; ``module`` + ``index`` resolve
    bare-name calls through the project call graph.
    """

    index: ProjectIndex
    module: ModuleInfo
    function: Optional[FunctionNode] = None
    owner: Optional[ClassInfo] = None

    def for_callee(
        self,
        module: ModuleInfo,
        function: FunctionNode,
        owner: Optional[ClassInfo],
    ) -> "EvalScope":
        """The scope for evaluating inside a resolved callee."""
        return EvalScope(
            index=self.index, module=module, function=function, owner=owner
        )


def reaching_definition(
    function: FunctionNode, name: str, before_line: int
) -> Optional[ast.expr]:
    """Latest assignment of *name* in *function* before *before_line*.

    Returns the assigned value expression, or ``None`` when the name is
    a parameter, loop target, or otherwise not plainly assigned (the
    caller then treats it as :data:`UNKNOWN`).
    """
    latest: Optional[Tuple[int, ast.expr]] = None
    for node in ast.walk(function):
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == name
                for target in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                value = node.value
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                value = node.value
        if value is None:
            continue
        lineno = getattr(node, "lineno", 0)
        if lineno < before_line and (latest is None or lineno > latest[0]):
            latest = (lineno, value)
    return latest[1] if latest is not None else None


def _join_any_mutable(verdicts: Tuple[Mutability, ...]) -> Mutability:
    """Join where one possibly-flowing mutable taints the whole value."""
    if not verdicts:
        return UNKNOWN
    if MUTABLE in verdicts:
        return MUTABLE
    if UNKNOWN in verdicts:
        return UNKNOWN
    return IMMUTABLE


def _call_target_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _classify_call(
    node: ast.Call,
    scope: EvalScope,
    depth: int,
    visited: Set[int],
) -> Mutability:
    name = _call_target_name(node)
    if name is None:
        return UNKNOWN
    if name in MUTABLE_CALLS:
        return MUTABLE
    if name in IMMUTABLE_CALLS:
        # tuple()/frozenset() over an inline comprehension are only as
        # immutable as the element expression they aggregate.
        if (
            name in ("tuple", "frozenset")
            and len(node.args) == 1
            and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp, ast.SetComp))
        ):
            element = node.args[0].elt
            if classify_mutability(element, scope, depth, visited) is MUTABLE:
                return MUTABLE
        return IMMUTABLE
    # A frozen-dataclass / NamedTuple constructor is immutable; other
    # known classes are opaque (not containers — never auto-flagged).
    target_class = scope.index.resolve_class(name)
    if target_class is not None:
        return IMMUTABLE if target_class.is_immutable_carrier else UNKNOWN
    # ``self.helper(...)`` resolves into the owning class.
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and scope.owner is not None
    ):
        method = scope.owner.methods.get(name)
        if method is not None:
            owner_module = scope.index.modules.get(scope.owner.module)
            if owner_module is not None:
                return _classify_function_result(
                    method, scope.for_callee(owner_module, method, scope.owner),
                    depth, visited,
                )
        return UNKNOWN
    if isinstance(func, ast.Name):
        resolved = scope.index.resolve_function(scope.module, name)
        if resolved is not None:
            callee_module, callee = resolved
            return _classify_function_result(
                callee, scope.for_callee(callee_module, callee, None),
                depth, visited,
            )
    return UNKNOWN


def _classify_function_result(
    function: FunctionNode,
    scope: EvalScope,
    depth: int,
    visited: Set[int],
) -> Mutability:
    """Join of a callee's return expressions (cycle- and depth-guarded)."""
    if depth >= MAX_WALK_DEPTH or id(function) in visited:
        return UNKNOWN
    visited = visited | {id(function)}
    verdicts = []
    for node in ast.walk(function):
        if isinstance(node, ast.Return) and node.value is not None:
            verdicts.append(
                classify_mutability(node.value, scope, depth + 1, visited)
            )
    return _join_any_mutable(tuple(verdicts))


def _classify_self_attribute(
    attr: str, scope: EvalScope, depth: int, visited: Set[int]
) -> Mutability:
    """Verdict for ``self.<attr>``: mutable only if *every* assignment is."""
    owner = scope.owner
    if owner is None:
        return UNKNOWN
    values = owner.attr_values.get(attr, [])
    if not values:
        return UNKNOWN
    verdicts = tuple(
        classify_mutability(value, scope, depth, visited) for value in values
    )
    if all(verdict is MUTABLE for verdict in verdicts):
        return MUTABLE
    return UNKNOWN


def classify_mutability(
    node: ast.expr,
    scope: EvalScope,
    depth: int = 0,
    visited: Optional[Set[int]] = None,
) -> Mutability:
    """Three-valued mutability verdict for *node* in *scope*."""
    if visited is None:
        visited = set()
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return MUTABLE
    if isinstance(node, ast.Constant):
        return IMMUTABLE
    if isinstance(node, ast.Tuple):
        return _join_any_mutable(
            tuple(
                classify_mutability(element, scope, depth, visited)
                for element in node.elts
                if not isinstance(element, ast.Starred)
            )
        )
    if isinstance(node, ast.Call):
        return _classify_call(node, scope, depth, visited)
    if isinstance(node, ast.IfExp):
        return _join_any_mutable(
            (
                classify_mutability(node.body, scope, depth, visited),
                classify_mutability(node.orelse, scope, depth, visited),
            )
        )
    if isinstance(node, ast.BoolOp):
        return _join_any_mutable(
            tuple(
                classify_mutability(value, scope, depth, visited)
                for value in node.values
            )
        )
    if isinstance(node, ast.Name):
        if scope.function is None:
            return UNKNOWN
        definition = reaching_definition(
            scope.function, node.id, getattr(node, "lineno", 0)
        )
        if definition is None or definition is node:
            return UNKNOWN
        return classify_mutability(definition, scope, depth + 1, visited)
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return _classify_self_attribute(node.attr, scope, depth + 1, visited)
        return UNKNOWN
    if isinstance(node, ast.Starred):
        return classify_mutability(node.value, scope, depth, visited)
    return UNKNOWN
