"""Parsing of ``# repro-lint:`` suppression directives.

Two forms, mirroring the pylint/ruff conventions contributors already
know:

per line
    ``code()  # repro-lint: disable=R001`` suppresses the listed rules
    for findings reported on that physical line.  A directive on a
    comment-only line also covers the line directly below it, so long
    statements can carry the rationale above them.
per file
    ``# repro-lint: disable-file=R004`` anywhere in the file (by
    convention near the top, next to a rationale) suppresses the listed
    rules for the whole file.

Rule lists are comma-separated; the special token ``all`` matches every
rule.  Unknown rule ids in a directive are tolerated (directives must
not break when a rule is retired), but the linter counts how many
findings each directive absorbed so dead suppressions are visible in
the report totals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_ALL = "all"


@dataclass(frozen=True)
class SuppressionIndex:
    """Immutable map of which rules are suppressed where in one file."""

    file_level: FrozenSet[str] = frozenset()
    by_line: Mapping[int, FrozenSet[str]] = field(default_factory=dict)
    standalone_lines: FrozenSet[int] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when *rule_id* is disabled at *line* (1-based)."""
        if _ALL in self.file_level or rule_id in self.file_level:
            return True
        for candidate in (line, line - 1):
            rules = self.by_line.get(candidate)
            if rules is not None and (_ALL in rules or rule_id in rules):
                # The ``line - 1`` form only applies when the directive
                # sits on a comment-only line; trailing directives bind
                # to their own line alone.
                if candidate == line or candidate in self.standalone_lines:
                    return True
        return False


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan *source* for directives and build the index.

    The scan is purely lexical (regex over physical lines) rather than a
    tokenizer pass: directives inside string literals would be
    mis-detected, but a false suppression requires the literal to
    contain ``# repro-lint:`` verbatim, which the linter's own fixture
    corpus is the only realistic place to do — and those fixtures are
    constructed to exercise exactly this parser.
    """
    file_level: set[str] = set()
    by_line: Dict[int, FrozenSet[str]] = {}
    standalone: set[int] = set()
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        if match.group("kind") == "disable-file":
            file_level.update(rules)
        else:
            by_line[line_number] = rules
            if line.strip().startswith("#"):
                standalone.add(line_number)
    return SuppressionIndex(
        file_level=frozenset(file_level),
        by_line=dict(by_line),
        standalone_lines=frozenset(standalone),
    )
