"""Finding and report value types produced by the linter.

A :class:`Finding` is itself a frozen value type (it is deduplicated in
sets and sorted into reports), so the linter practices the R004 contract
it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Ordering is (path, line, column, rule) so reports read top-to-bottom
    per file regardless of which rule produced each finding.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    fix_hint: str = ""

    def format(self) -> str:
        """Render as the classic ``path:line:col: ID message`` line."""
        text = f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"
        if self.fix_hint:
            text += f" [fix: {self.fix_hint}]"
        return text

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable mapping for the ``--format json`` mode."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


@dataclass(frozen=True, order=True)
class RuleCrash:
    """One rule that raised instead of reporting findings.

    A crash means the lint verdict on *path* is incomplete — CI must be
    able to tell that apart from a finding (which is actionable) and
    from a clean pass, so crashes drive a distinct exit code (3).
    """

    rule_id: str
    path: str
    error: str
    traceback: str = ""

    def format(self) -> str:
        """One-line crash summary (the traceback prints separately)."""
        return f"{self.path}: {self.rule_id} crashed: {self.error}"

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable mapping for the ``--format json`` mode."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "error": self.error,
            "traceback": self.traceback,
        }


@dataclass(frozen=True)
class LintReport:
    """Aggregated result of one linter run."""

    findings: Tuple[Finding, ...]
    files_checked: int
    suppressed_count: int = 0
    crashes: Tuple[RuleCrash, ...] = ()

    @property
    def is_clean(self) -> bool:
        """True when no finding survived suppression filtering."""
        return not self.findings and not self.crashes

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 findings, 3 crashed rule(s).

        A crash dominates findings: the report is *incomplete*, so CI
        must not treat it as an ordinary red lint run (and certainly
        not as a green one).  Exit 2 stays reserved for usage errors.
        """
        if self.crashes:
            return 3
        return 0 if not self.findings else 1

    def counts_by_rule(self) -> Dict[str, int]:
        """Rule id -> number of findings, sorted by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        """Multi-line human-readable report."""
        lines: List[str] = [finding.format() for finding in self.findings]
        for crash in self.crashes:
            lines.append(crash.format())
        if self.findings:
            by_rule = ", ".join(
                f"{rule}={count}" for rule, count in self.counts_by_rule().items()
            )
            lines.append(
                f"{len(self.findings)} finding(s) in {self.files_checked} "
                f"file(s) ({by_rule}; {self.suppressed_count} suppressed)"
            )
        elif not self.crashes:
            lines.append(
                f"clean: {self.files_checked} file(s), "
                f"{self.suppressed_count} suppressed finding(s)"
            )
        if self.crashes:
            lines.append(
                f"{len(self.crashes)} rule crash(es) — report incomplete "
                f"(exit 3; tracebacks on stderr)"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable mapping of the whole report (for CI)."""
        return {
            "version": 2,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed_count,
            "clean": self.is_clean,
            "counts": self.counts_by_rule(),
            "findings": [finding.to_json() for finding in self.findings],
            "crashes": [crash.to_json() for crash in self.crashes],
        }
