"""Whole-program index shared by the cross-module analysis rules.

The per-file rules (R001–R005) see one :class:`ast.Module` at a time,
which is exactly right for lexical invariants but blind to the
contracts the serving layer stakes correctness on: which attributes a
lock guards, what a publish sink receives after three calls of
indirection, whether a callback registered in another module inserts
into a cache it must only purge.  :class:`ProjectIndex` parses every
module **once** and exposes the cross-module facts the concurrency
rules (R006–R009) need:

* per class: the ``self.*`` attribute inventory, which attributes hold
  ``threading.Lock``/``RLock`` objects, the ``guarded-by`` contract
  declarations, frozen-dataclass / NamedTuple status, and every method
  body;
* per module: the top-level def inventory (the call-graph nodes), the
  names bound to imported modules, and the suppression index (so
  project-level findings honour the same directives per-file findings
  do);
* globally: name-based function/class resolution for the conservative
  call-graph walks in :mod:`repro.analysis.dataflow`, and the declared
  global lock order.

Contract directives (all ``# repro-lint:`` comments, parsed lexically
like suppressions):

``guarded-by=<lock>``
    trailing on a ``self.attr = ...`` line inside a method: declares
    that *attr* may only be read or written while holding
    ``self.<lock>`` (R006).
``publish``
    trailing on (or standalone directly above) a ``def`` line: the
    function's return values are publish sinks and must be transitively
    immutable (R007).
``lock-order=A._x,B._y``
    standalone comment line: declares the single global acquisition
    order for qualified ``Class.attr`` locks (R006's nesting check).

The index is deliberately cheap to build (one ``ast.parse`` per file)
and picklable, so ``repro lint --index-cache PATH`` can persist it
between invocations and skip re-parsing an unchanged tree.
"""

from __future__ import annotations

import ast
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.suppressions import SuppressionIndex, parse_suppressions

#: Bump when the index layout changes; stale pickles are rebuilt.
INDEX_VERSION = 1

#: Call names that construct lock objects (``threading.Lock()`` etc.).
_LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock"})

_GUARDED_BY = re.compile(
    r"#\s*repro-lint:\s*guarded-by\s*=\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
)
_PUBLISH = re.compile(r"#\s*repro-lint:\s*publish(?![-\w])")
_LOCK_ORDER = re.compile(
    r"#\s*repro-lint:\s*lock-order\s*=\s*"
    r"(?P<locks>[A-Za-z0-9_.]+(?:\s*,\s*[A-Za-z0-9_.]+)*)"
)

#: Any function/async-function definition node.
FunctionNode = ast.FunctionDef


@dataclass
class ClassInfo:
    """Everything the concurrency rules know about one class."""

    name: str
    module: str  # logical path of the defining module
    lineno: int
    node: ast.ClassDef
    #: method name -> def node (includes dunders; async defs excluded —
    #: the tree has none and the lock analysis is synchronous anyway).
    methods: Dict[str, FunctionNode] = field(default_factory=dict)
    #: every ``self.X`` ever assigned, mapping to its assigned values.
    attr_values: Dict[str, List[ast.expr]] = field(default_factory=dict)
    #: attrs assigned a ``Lock()`` / ``RLock()`` call.
    lock_attrs: FrozenSet[str] = frozenset()
    #: guarded attr -> lock attr, from ``guarded-by`` directives.
    guarded: Dict[str, str] = field(default_factory=dict)
    #: attr -> bare class name, for ``self.x = SomeClass(...)`` inits.
    attr_classes: Dict[str, str] = field(default_factory=dict)
    is_frozen_dataclass: bool = False
    is_namedtuple: bool = False

    @property
    def is_immutable_carrier(self) -> bool:
        """True for frozen dataclasses and NamedTuples (R007/R009 ok)."""
        return self.is_frozen_dataclass or self.is_namedtuple


@dataclass
class ModuleInfo:
    """One parsed module plus the lexical facts rules consult."""

    logical_path: str
    display_path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    #: top-level defs only — the nodes of the module call graph.
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: names bound to modules by ``import x`` / ``import x.y as z``.
    imported_modules: FrozenSet[str] = frozenset()
    #: linenos of ``def`` statements marked as publish sinks.
    publish_lines: FrozenSet[int] = frozenset()
    #: lock-order declarations found in this module.
    lock_orders: Tuple[Tuple[str, ...], ...] = ()


@dataclass
class ProjectIndex:
    """The shared whole-program index (built once per lint invocation)."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: bare class name -> defining infos (collisions preserved in order).
    classes_by_name: Dict[str, List[ClassInfo]] = field(default_factory=dict)
    #: bare function name -> top-level defs with that name, project-wide.
    functions_by_name: Dict[str, List[Tuple[ModuleInfo, FunctionNode]]] = field(
        default_factory=dict
    )

    def add(self, module: ModuleInfo) -> None:
        """Register *module* and fold it into the name tables."""
        self.modules[module.logical_path] = module
        for cls in module.classes.values():
            self.classes_by_name.setdefault(cls.name, []).append(cls)
        for name, node in module.functions.items():
            self.functions_by_name.setdefault(name, []).append((module, node))

    def resolve_class(self, name: str) -> Optional[ClassInfo]:
        """The unique class called *name*, or ``None`` if absent/ambiguous."""
        candidates = self.classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> Optional[Tuple[ModuleInfo, FunctionNode]]:
        """Resolve a bare called name: same module first, then unique global."""
        local = module.functions.get(name)
        if local is not None:
            return module, local
        candidates = self.functions_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def declared_lock_orders(self) -> List[Tuple[str, Tuple[str, ...], ModuleInfo]]:
        """Every lock-order declaration as (joined, locks, module)."""
        found: List[Tuple[str, Tuple[str, ...], ModuleInfo]] = []
        for module in sorted(self.modules.values(), key=lambda m: m.logical_path):
            for order in module.lock_orders:
                found.append((",".join(order), order, module))
        return found


def _self_attr(node: ast.expr) -> Optional[str]:
    """The attribute name for a ``self.X`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_name(node: ast.expr) -> Optional[str]:
    """Bare (last-component) name of a call target, else ``None``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id if isinstance(target, ast.Name) else None
        )
        if name != "dataclass":
            continue
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    value = keyword.value
                    return isinstance(value, ast.Constant) and value.value is True
        return False
    return False


def _is_namedtuple(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = (
            base.attr
            if isinstance(base, ast.Attribute)
            else base.id if isinstance(base, ast.Name) else None
        )
        if name == "NamedTuple":
            return True
    return False


def _directive_lines(source: str) -> Tuple[Dict[int, str], FrozenSet[int], List[Tuple[str, ...]]]:
    """Scan *source* for contract directives.

    Returns ``(guarded_by_line, publish_lines, lock_orders)`` where
    ``guarded_by_line`` maps a physical line to the declared lock name
    and ``publish_lines`` holds every line carrying a publish marker
    (standalone markers also cover the line below, mirroring the
    suppression convention).
    """
    guarded: Dict[int, str] = {}
    publish: set[int] = set()
    orders: List[Tuple[str, ...]] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _GUARDED_BY.search(line)
        if match is not None:
            guarded[line_number] = match.group("lock")
        if _PUBLISH.search(line) is not None:
            publish.add(line_number)
            if line.strip().startswith("#"):
                publish.add(line_number + 1)
        order_match = _LOCK_ORDER.search(line)
        if order_match is not None and line.strip().startswith("#"):
            orders.append(
                tuple(
                    token.strip()
                    for token in order_match.group("locks").split(",")
                    if token.strip()
                )
            )
    return guarded, frozenset(publish), orders


def _collect_class(
    node: ast.ClassDef, logical_path: str, guarded_lines: Dict[int, str]
) -> ClassInfo:
    """Build the :class:`ClassInfo` for one class body."""
    info = ClassInfo(
        name=node.name,
        module=logical_path,
        lineno=node.lineno,
        node=node,
        is_frozen_dataclass=_is_frozen_dataclass(node),
        is_namedtuple=_is_namedtuple(node),
    )
    lock_attrs: set[str] = set()
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef):
            info.methods[statement.name] = statement
            for inner in ast.walk(statement):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(inner, ast.Assign):
                    targets, value = inner.targets, inner.value
                elif isinstance(inner, ast.AnnAssign) and inner.value is not None:
                    targets, value = [inner.target], inner.value
                if value is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    info.attr_values.setdefault(attr, []).append(value)
                    called = _call_name(value)
                    if called in _LOCK_CONSTRUCTORS:
                        lock_attrs.add(attr)
                    elif isinstance(value, ast.Call) and called is not None:
                        info.attr_classes.setdefault(attr, called)
                    lock = guarded_lines.get(inner.lineno)
                    if lock is not None:
                        info.guarded[attr] = lock
    info.lock_attrs = frozenset(lock_attrs)
    return info


def index_module(
    logical_path: str,
    display_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
) -> Optional[ModuleInfo]:
    """Index one module; ``None`` when the source does not parse.

    Unparsable files are already reported as ``E001`` by the runner, so
    the index simply omits them (every cross-module conclusion drawn
    from the rest of the tree stays conservative).
    """
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return None
    guarded_lines, publish_lines, lock_orders = _directive_lines(source)
    module = ModuleInfo(
        logical_path=logical_path,
        display_path=display_path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
        publish_lines=publish_lines,
        lock_orders=tuple(lock_orders),
    )
    imported: set[str] = set()
    for statement in tree.body:
        if isinstance(statement, ast.FunctionDef):
            module.functions[statement.name] = statement
        elif isinstance(statement, ast.ClassDef):
            module.classes[statement.name] = _collect_class(
                statement, logical_path, guarded_lines
            )
        elif isinstance(statement, ast.Import):
            for alias in statement.names:
                imported.add(alias.asname or alias.name.split(".")[0])
    module.imported_modules = frozenset(imported)
    return module


def build_index(
    entries: Sequence[Tuple[str, str, str]],
) -> ProjectIndex:
    """Build the index from ``(logical_path, display_path, source)`` rows."""
    index = ProjectIndex()
    for logical_path, display_path, source in entries:
        module = index_module(logical_path, display_path, source)
        if module is not None:
            index.add(module)
    return index


# ----------------------------------------------------------------------
# On-disk cache (``repro lint --index-cache PATH``)
# ----------------------------------------------------------------------
def _stamp_of(files: Sequence[Path]) -> Tuple[Tuple[str, int, int], ...]:
    """Freshness stamp: (path, size, mtime_ns) per file, sorted."""
    rows: List[Tuple[str, int, int]] = []
    for path in files:
        stat = path.stat()
        rows.append((str(path), stat.st_size, stat.st_mtime_ns))
    return tuple(sorted(rows))


def load_cached_index(
    cache_path: Path, files: Sequence[Path]
) -> Optional[ProjectIndex]:
    """The cached index when it matches *files* exactly, else ``None``."""
    try:
        with cache_path.open("rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != INDEX_VERSION:
        return None
    if payload.get("stamp") != _stamp_of(files):
        return None
    index = payload.get("index")
    return index if isinstance(index, ProjectIndex) else None


def store_cached_index(
    cache_path: Path, files: Sequence[Path], index: ProjectIndex
) -> None:
    """Persist *index* with its freshness stamp (best effort)."""
    payload = {
        "version": INDEX_VERSION,
        "stamp": _stamp_of(files),
        "index": index,
    }
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        with cache_path.open("wb") as handle:
            pickle.dump(payload, handle)
    except OSError:  # pragma: no cover - unwritable cache dir is non-fatal
        pass
