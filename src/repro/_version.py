"""Single source of the package version string."""

__version__ = "1.0.0"
