"""MVCC snapshots: immutable published views of the evolving TAR database.

PR 7's serving tier was honest only between appends: readers and the
incremental builder shared one mutable :class:`TaraKnowledgeBase`, with
an integer epoch and cache purges as the only isolation.  This module
promotes the epoch to a real copy-on-write snapshot object:

* a :class:`Snapshot` is a *frozen* view — knowledge base, lazily built
  explorer, and a private region-keyed cache segment — published by
  :class:`repro.core.IncrementalTara` and never mutated afterwards;
* readers *pin* a snapshot through a reference-counted
  :class:`SnapshotHandle` (a context manager); every query executes
  against the pinned view, so a concurrent publish can never change an
  answer mid-flight;
* when the publisher swaps in a successor it drops its own standing
  reference, and the superseded snapshot is **retired** — its cache
  segment and explorer released — exactly once, when the last reader
  drains.

Epoch arithmetic disappears from the serving layers: a snapshot's
``epoch`` (its window count at publication) is an identity readers carry
around, compared nowhere outside this module (enforced by analyzer rule
R008's snapshot-handle discipline).

Concurrency contract: all mutable state is guarded by the snapshot's
own lock; the retirement callback fires *outside* the lock so publisher
bookkeeping can take its own lock without nesting under ours (global
order: ``IncrementalTara._lock`` → ``TaraService._lock`` →
``Snapshot._lock``; see :mod:`repro.core.incremental`).
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Callable, Optional, Type

from repro.common.errors import RetiredSnapshotError
from repro.core.builder import TaraKnowledgeBase
from repro.core.cache import CacheEntry, CacheKey, RegionKeyedCache
from repro.core.explorer import TaraExplorer

#: Default capacity of one snapshot's region-keyed cache segment.
DEFAULT_SEGMENT_CAPACITY = 1024


class Snapshot:
    """One published, immutable view of the knowledge base.

    Created by the publisher (or by :class:`repro.service.TaraService`
    for static sources) and handed to readers only through pinned
    handles.  ``epoch`` equals the window count at publication and is an
    opaque identity outside this class.
    """

    def __init__(
        self,
        epoch: int,
        knowledge_base: TaraKnowledgeBase,
        *,
        segment_capacity: int = DEFAULT_SEGMENT_CAPACITY,
        explorer: Optional[TaraExplorer] = None,
        on_retire: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.epoch = epoch
        self.knowledge_base = knowledge_base
        self._segment_capacity = segment_capacity
        self._on_retire = on_retire
        self._lock = threading.Lock()
        self._refs = 0  # repro-lint: guarded-by=_lock
        self._retired = False  # repro-lint: guarded-by=_lock
        self._retire_count = 0  # repro-lint: guarded-by=_lock
        self._explorer = explorer  # repro-lint: guarded-by=_lock
        self._segment: Optional["RegionKeyedCache"] = None  # repro-lint: guarded-by=_lock

    # ------------------------------------------------------------------
    # identity / introspection
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Windows visible to readers of this snapshot."""
        return self.knowledge_base.window_count

    @property
    def refs(self) -> int:
        """Outstanding pins (the publisher's standing pin included)."""
        with self._lock:
            return self._refs

    @property
    def retired(self) -> bool:
        """True once the last reader drained and the segment was freed."""
        with self._lock:
            return self._retired

    @property
    def retire_count(self) -> int:
        """How many times retirement ran — the invariant says at most 1."""
        with self._lock:
            return self._retire_count

    # ------------------------------------------------------------------
    # pin / release
    # ------------------------------------------------------------------
    def pin(self) -> "Snapshot":
        """Take one reference; the snapshot stays alive until released."""
        with self._lock:
            if self._retired:
                raise RetiredSnapshotError(
                    f"snapshot epoch {self.epoch} is retired; "
                    "pin the publisher's current snapshot instead"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last drop retires the snapshot.

        Retirement frees the cache segment and the explorer exactly
        once; the ``on_retire`` callback (publisher bookkeeping) fires
        after the lock is released so it may take other locks freely.
        """
        dropped: Optional[int] = None
        with self._lock:
            if self._refs <= 0:
                raise RetiredSnapshotError(
                    f"snapshot epoch {self.epoch}: release without a pin"
                )
            self._refs -= 1
            if self._refs == 0 and not self._retired:
                self._retired = True
                self._retire_count += 1
                segment = self._segment
                dropped = 0 if segment is None else segment.clear()
                self._segment = None
                self._explorer = None
        if dropped is not None and self._on_retire is not None:
            self._on_retire(dropped)

    def handle(self) -> "SnapshotHandle":
        """Pin and wrap in a context-managed handle."""
        return SnapshotHandle(self.pin())

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def explorer(self) -> TaraExplorer:
        """The query processor over this snapshot's knowledge base.

        Built lazily (an epoch-0 snapshot holds no windows and raises
        the explorer's usual :class:`~repro.common.errors.QueryError`)
        and memoized for the snapshot's lifetime.
        """
        with self._lock:
            if self._retired:
                raise RetiredSnapshotError(
                    f"snapshot epoch {self.epoch} is retired"
                )
            explorer = self._explorer
            if explorer is None:
                explorer = TaraExplorer(self.knowledge_base)
                self._explorer = explorer
            return explorer

    # ------------------------------------------------------------------
    # cache segment
    # ------------------------------------------------------------------
    def cached(self, key: CacheKey) -> Optional[CacheEntry]:
        """The segment entry at *key*, or ``None`` (miss or retired)."""
        with self._lock:
            if self._segment is None:
                return None
            return self._segment.get(key)

    def store(self, key: CacheKey, value: object) -> int:
        """Memoize one frozen answer in the segment; returns evictions.

        Always correct without any epoch re-check: the caller holds a
        pin, so the value was computed against exactly this view; if the
        snapshot was superseded meanwhile the entry simply serves the
        remaining pinned readers until retirement clears the segment.
        A store after retirement is dropped silently (the answer was
        still correct; there is just nobody left to reuse it).
        """
        with self._lock:
            if self._retired:
                return 0
            segment = self._segment
            if segment is None:
                segment = RegionKeyedCache(max_entries=self._segment_capacity)
                self._segment = segment
            return segment.put(key, value, self.epoch)

    def segment_info(self) -> "tuple[int, int]":
        """``(entries, evictions)`` of the segment (0, 0 before first use)."""
        with self._lock:
            if self._segment is None:
                return 0, 0
            return len(self._segment), self._segment.evictions


class SnapshotHandle:
    """A context-managed pin on one :class:`Snapshot`.

    Obtained from :meth:`repro.core.IncrementalTara.snapshot` (or
    :meth:`Snapshot.handle`); the snapshot arrives already pinned and
    :meth:`release` is idempotent, so the handle may be released
    explicitly, by ``with``-exit, or both.
    """

    def __init__(self, snapshot: Snapshot) -> None:
        self._snapshot = snapshot
        self._released = False

    @property
    def snapshot(self) -> Snapshot:
        """The pinned snapshot (valid until :meth:`release`)."""
        return self._snapshot

    def release(self) -> None:
        """Drop this handle's pin (idempotent)."""
        if self._released:
            return
        self._released = True
        self._snapshot.release()

    def __enter__(self) -> Snapshot:
        return self._snapshot

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.release()
