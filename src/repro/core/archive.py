"""The Temporal Association Rule Archive (TAR Archive).

The archive is TARA's compact per-rule history store: for every rule it
records, per window in which the rule was generated, the integer counts
that determine all its measures —

* the rule count  ``|F(X ∪ Y, D, T_i)|``,
* the antecedent count ``|F(X, D, T_i)|``,
* the consequent count ``|F(Y, D, T_i)|`` (enables lift and friends),
* (shared across rules) the window size ``|F(∅, D, T_i)|``.

Keeping *counts* instead of the (support, confidence) ratios is the key
design decision: counts are additive, so measures over any union of
windows — the roll-up operation — are computed exactly without touching
the raw data.

Encoding ("our specially designed encoding and decoding strategies",
Section 2.1.5): one byte string per rule, a sequence of
``(window-gap, Δ rule-count, Δ antecedent-margin, Δ consequent-margin)``
entries in zigzag varints.  Window ids are strictly increasing so gaps
are small positive ints; counts of a surviving rule drift slowly so
deltas are near zero — the typical entry costs 4 bytes.

The archive supports two modes:

* **staged** — entries live in per-rule Python lists; appending windows
  is O(1) per entry (used during the offline build and by the
  incremental builder);
* **sealed** — entries are frozen into the byte encoding;
  :meth:`encoded_size_bytes` then reports the Figure 12 storage number.

Reads work in both modes (sealed reads decode on the fly and are
memoized per rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import (
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)
from repro.core.storage.codec import Entry, decode_series, encode_series
from repro.data.periods import PeriodSpec
from repro.mining.rules import RuleId, ScoredRule


@dataclass(frozen=True)
class WindowMeasure:
    """A rule's measured values in one window, decoded from the archive."""

    window: int
    rule_count: int
    antecedent_count: int
    window_size: int
    consequent_count: int = 0

    @property
    def support(self) -> float:
        """Formula 1 value for this window (0.0 on an empty window)."""
        return self.rule_count / self.window_size if self.window_size else 0.0

    @property
    def confidence(self) -> float:
        """Formula 2 value for this window."""
        return self.rule_count / self.antecedent_count if self.antecedent_count else 0.0

    @property
    def lift(self) -> float:
        """Formula 3 value for this window (0.0 when undefined).

        Available because the archive keeps the consequent count too —
        the hook through which measures beyond support/confidence "can
        be plugged in" per the paper's foundation section.
        """
        denominator = self.antecedent_count * self.consequent_count
        if denominator == 0:
            return 0.0
        return self.rule_count * self.window_size / denominator


@dataclass(frozen=True)
class RolledUpMeasure:
    """Exact-or-bounded measures of a rule over a union of windows.

    When the rule has an archive entry in every requested window the
    values are exact.  Windows without an entry contribute an unknown
    count in ``[0, generation-threshold bound)``; the paper's roll-up
    approximation bound (Section 2.1.5, roll-up discussion) then widens
    ``support`` and ``confidence`` into the reported intervals.  The
    point estimates treat missing counts as zero (the rule was at most
    marginally present there).
    """

    rule_id: RuleId
    windows_present: Tuple[int, ...]
    windows_missing: Tuple[int, ...]
    rule_count: int
    antecedent_count: int
    total_size: int
    support_low: float
    support_high: float
    confidence_low: float
    confidence_high: float

    @property
    def support(self) -> float:
        """Point estimate (missing windows counted as zero)."""
        return self.rule_count / self.total_size if self.total_size else 0.0

    @property
    def confidence(self) -> float:
        """Point estimate (missing windows counted as zero)."""
        return (
            self.rule_count / self.antecedent_count if self.antecedent_count else 0.0
        )

    @property
    def is_exact(self) -> bool:
        """True when no requested window lacked an archive entry."""
        return not self.windows_missing


class TarArchive:
    """Compact store of every rule's per-window parameter counts."""

    def __init__(self) -> None:
        self._staged: Dict[RuleId, List[Entry]] = {}
        self._sealed: Dict[RuleId, bytes] = {}
        self._decode_cache: Dict[RuleId, List[Entry]] = {}
        self._window_sizes: List[int] = []
        # Per-window bound on the count of an unarchived itemset: an
        # itemset absent from window w was below the generation support
        # threshold there, i.e. count <= ceil(supp_g * n_w) - 1.
        self._missing_count_bounds: List[int] = []

    # ------------------------------------------------------------------
    # build-time API
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Number of windows recorded so far."""
        return len(self._window_sizes)

    def begin_window(self, window_size: int, missing_count_bound: int) -> int:
        """Open the next window; returns its index.

        Args:
            window_size: ``|F(∅, D, T_i)|`` of the new window.
            missing_count_bound: exclusive upper bound on the count of
                any itemset *not* archived in this window (derived from
                the generation support threshold).
        """
        if window_size < 0 or missing_count_bound < 0:
            raise ValidationError("window size and bound must be >= 0")
        self._window_sizes.append(window_size)
        self._missing_count_bounds.append(missing_count_bound)
        return len(self._window_sizes) - 1

    def record(self, window: int, scored_rules: Iterable[ScoredRule]) -> int:
        """Archive one window's scored rules; returns entries written.

        Must target the most recently opened window (the evolving-data
        model appends monotonically).
        """
        if window != len(self._window_sizes) - 1:
            raise UnknownWindowError(
                f"can only record into the latest window "
                f"{len(self._window_sizes) - 1}, got {window}"
            )
        written = 0
        for scored in scored_rules:
            if scored.window_size != self._window_sizes[window]:
                raise ValidationError(
                    f"scored rule window size {scored.window_size} does not "
                    f"match archive window size {self._window_sizes[window]}"
                )
            if (
                scored.antecedent_count < scored.rule_count
                or scored.consequent_count < scored.rule_count
            ):
                raise ValidationError(
                    f"rule {scored.rule_id}: marginal counts "
                    f"({scored.antecedent_count}, {scored.consequent_count}) "
                    f"below the rule count {scored.rule_count}"
                )
            series = self._staged.get(scored.rule_id)
            if series is None:
                if scored.rule_id in self._sealed:
                    series = self._thaw(scored.rule_id)
                else:
                    series = []
                    self._staged[scored.rule_id] = series
            if series and series[-1][0] >= window:
                raise ValidationError(
                    f"rule {scored.rule_id} already recorded in window "
                    f"{series[-1][0]} >= {window}"
                )
            series.append(
                (
                    window,
                    scored.rule_count,
                    scored.antecedent_count,
                    scored.consequent_count,
                )
            )
            written += 1
        return written

    def _thaw(self, rule_id: RuleId) -> List[Entry]:
        """Reopen a sealed rule's series for appending."""
        series = list(self._decode(rule_id))
        del self._sealed[rule_id]
        self._decode_cache.pop(rule_id, None)
        self._staged[rule_id] = series
        return series

    def clone(self) -> "TarArchive":
        """An independent copy for copy-on-write snapshot publication.

        Recording into the clone can never disturb a reader of this
        archive: staged per-rule series are list-copied (appends go to
        the clone's lists), and — crucially — a :meth:`record` that
        :meth:`_thaw`\\ s a sealed rule deletes it from the *clone's*
        sealed dict only.  Sealed byte blobs are immutable and shared.
        The decode memo starts empty; it is a cache, not state.
        """
        copy = TarArchive()
        copy._staged = {
            rule_id: list(series) for rule_id, series in self._staged.items()
        }
        copy._sealed = dict(self._sealed)
        copy._window_sizes = list(self._window_sizes)
        copy._missing_count_bounds = list(self._missing_count_bounds)
        return copy

    def seal(self) -> None:
        """Freeze every staged series into its byte encoding."""
        for rule_id, series in self._staged.items():
            self._sealed[rule_id] = _encode_series(series)
        self._staged.clear()
        self._decode_cache.clear()

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def __contains__(self, rule_id: RuleId) -> bool:
        return rule_id in self._staged or rule_id in self._sealed

    def __len__(self) -> int:
        return len(self._staged) + len(self._sealed)

    def rule_ids(self) -> Iterator[RuleId]:
        """All rule ids with at least one archived entry."""
        yield from self._staged
        yield from self._sealed

    def window_size(self, window: int) -> int:
        """``|F(∅, D, T_i)|`` for a recorded window."""
        self._check_window(window)
        return self._window_sizes[window]

    def missing_count_bound(self, window: int) -> int:
        """Exclusive bound on unarchived itemset counts in *window*."""
        self._check_window(window)
        return self._missing_count_bounds[window]

    def _entries(self, rule_id: RuleId) -> List[Entry]:
        staged = self._staged.get(rule_id)
        if staged is not None:
            return staged
        if rule_id in self._sealed:
            return self._decode(rule_id)
        raise UnknownRuleError(f"rule {rule_id} has no archived entries")

    def series_entries(self, rule_id: RuleId) -> List[Entry]:
        """One rule's decoded entries (the ``SeriesSource`` read surface).

        Together with :meth:`encoded_series`, :meth:`rule_ids`,
        ``__contains__`` and ``__len__`` this makes the archive a
        structural :class:`repro.core.storage.source.SeriesSource`, so
        callers written against the protocol work over both the
        in-memory archive and the mmap-backed sharded reader.
        """
        return self._entries(rule_id)

    def _decode(self, rule_id: RuleId) -> List[Entry]:
        cached = self._decode_cache.get(rule_id)
        if cached is None:
            cached = _decode_series(self._sealed[rule_id])
            self._decode_cache[rule_id] = cached
        return cached

    def series(self, rule_id: RuleId) -> List[WindowMeasure]:
        """The rule's full archived trajectory, oldest window first."""
        return [
            WindowMeasure(
                window=window,
                rule_count=rule_count,
                antecedent_count=antecedent_count,
                window_size=self._window_sizes[window],
                consequent_count=consequent_count,
            )
            for window, rule_count, antecedent_count, consequent_count
            in self._entries(rule_id)
        ]

    def measure_at(self, rule_id: RuleId, window: int) -> Optional[WindowMeasure]:
        """The rule's measures in one window, or ``None`` if unarchived there."""
        self._check_window(window)
        for entry in self._entries(rule_id):
            entry_window, rule_count, antecedent_count, consequent_count = entry
            if entry_window == window:
                return WindowMeasure(
                    window=window,
                    rule_count=rule_count,
                    antecedent_count=antecedent_count,
                    window_size=self._window_sizes[window],
                    consequent_count=consequent_count,
                )
            if entry_window > window:
                return None
        return None

    def windows_of(self, rule_id: RuleId) -> Tuple[int, ...]:
        """Windows in which the rule has archived entries."""
        return tuple(entry[0] for entry in self._entries(rule_id))

    # ------------------------------------------------------------------
    # roll-up
    # ------------------------------------------------------------------
    def rolled_up(self, rule_id: RuleId, spec: PeriodSpec) -> RolledUpMeasure:
        """Measures of a rule over the union of *spec*'s windows.

        Counts are summed across the windows where the rule is archived;
        the remaining windows contribute the approximation-bound
        intervals documented on :class:`RolledUpMeasure`.
        """
        wanted = set(spec)
        for window in wanted:
            self._check_window(window)
        present: List[int] = []
        rule_count = 0
        antecedent_count = 0
        for window, entry_rule_count, entry_antecedent_count, _ in self._entries(
            rule_id
        ):
            if window in wanted:
                present.append(window)
                rule_count += entry_rule_count
                antecedent_count += entry_antecedent_count
        missing = sorted(wanted - set(present))
        total_size = sum(self._window_sizes[w] for w in spec)
        missing_rule_max = sum(
            max(self._missing_count_bounds[w] - 1, 0) for w in missing
        )
        # In a missing window the antecedent may still be arbitrarily
        # frequent (only the full itemset was infrequent), so the
        # confidence lower bound lets the antecedent grow to the whole
        # window while adding no rule occurrences.
        missing_antecedent_max = sum(self._window_sizes[w] for w in missing)

        support_low = rule_count / total_size if total_size else 0.0
        support_high = (
            (rule_count + missing_rule_max) / total_size if total_size else 0.0
        )
        denominator_low = antecedent_count + missing_antecedent_max
        confidence_low = rule_count / denominator_low if denominator_low else 0.0
        numerator_high = rule_count + missing_rule_max
        # Antecedent count always >= rule count, so the highest possible
        # confidence adds the maximal missing rule occurrences to both.
        denominator_high = antecedent_count + missing_rule_max
        confidence_high = (
            numerator_high / denominator_high if denominator_high else 0.0
        )
        return RolledUpMeasure(
            rule_id=rule_id,
            windows_present=tuple(present),
            windows_missing=tuple(missing),
            rule_count=rule_count,
            antecedent_count=antecedent_count,
            total_size=total_size,
            support_low=support_low,
            support_high=min(support_high, 1.0),
            confidence_low=confidence_low,
            confidence_high=min(confidence_high, 1.0),
        )

    # ------------------------------------------------------------------
    # storage accounting (Figure 12)
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Total number of archived (rule, window) entries."""
        total = sum(len(series) for series in self._staged.values())
        total += sum(len(self._decode(rid)) for rid in self._sealed)
        return total

    def encoded_series(self, rule_id: RuleId) -> bytes:
        """The byte encoding of one rule's series.

        Sealed rules return their stored blob; staged rules are encoded
        on the fly.  Used by the persistence layer's callers and by the
        determinism tests, which compare serial vs. parallel builds at
        byte level.
        """
        blob = self._sealed.get(rule_id)
        if blob is not None:
            return blob
        staged = self._staged.get(rule_id)
        if staged is not None:
            return _encode_series(staged)
        raise UnknownRuleError(f"rule {rule_id} has no archived entries")

    def encoded_size_bytes(self) -> int:
        """Bytes used by the sealed encodings (plus staged estimate).

        Staged series are counted at their would-be encoded size so the
        number is meaningful before :meth:`seal` as well.
        """
        sealed = sum(len(blob) for blob in self._sealed.values())
        staged = sum(
            len(_encode_series(series)) for series in self._staged.values()
        )
        return sealed + staged

    def uncompressed_size_bytes(self) -> int:
        """Size of the naive representation the paper compares against:
        one (window id, support, confidence) record of 8-byte fields per
        rule per window."""
        return self.entry_count() * 3 * 8

    def _check_window(self, window: int) -> None:
        if not 0 <= window < len(self._window_sizes):
            raise UnknownWindowError(
                f"window {window} out of range [0, {len(self._window_sizes)})"
            )


# The series byte codec lives in repro.core.storage.codec (the v2
# container stores its output raw); these historical private names are
# kept for the persistence layer and the determinism tests.
_encode_series = encode_series
_decode_series = decode_series
