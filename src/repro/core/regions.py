"""Time-aware stable regions: the per-window parameter-space partition.

Definition 11 of the paper: within one time window, the (support,
confidence) plane splits into finitely many *stable regions* — maximal
boxes within which any parameter setting produces the identical ruleset.
Region boundaries are the distinct support/confidence values of the
window's parametric locations; the upper-right corner of each region is
its *cut location* (Definition 12).

:class:`WindowSlice` is one window's share of the EPS index.  It stores
the locations bucketed by support value (rows sorted by confidence), so

* finding the enclosing stable region of a setting is two binary
  searches, and
* collecting the ruleset of a setting — the union of the rules at every
  location the setting's cut location dominates (Lemma 4) — is a
  staircase scan over the dominated part of the grid.

A breadth-first traversal of the domination grid is provided as the
paper-literal alternative ("iterating over its dominating regions");
the staircase scan is the default because it touches only occupied
locations.  Both return identical rulesets (property-tested).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import QueryError, ValidationError
from repro.core.locations import CountLocation, Location, count_axes, distinct_axes
from repro.data.items import ItemId
from repro.mining.rules import RuleId

#: Query values whose float-axis bisection is trusted without an exact
#: check: if the query is at least this far (in float space) from both
#: neighboring axis values, the float answer provably equals the exact
#: one.  The margin dominates the two error sources by orders of
#: magnitude — ``limit_denominator(10**12)`` moves a query by at most
#: ~1e-12 and rounding an axis value to float by at most ~1.2e-16 (axes
#: live in [0, 1]) — so only genuine boundary hits pay the ``Fraction``
#: construction.
_EXACT_CHECK_MARGIN = 1e-9

#: Denominator cap turning a float query value into an exact rational;
#: shared by every query-side conversion so the same float always maps
#: to the same rational.
_QUERY_DENOMINATOR_CAP = 10**12


def _query_fraction(value: float) -> Fraction:
    """The exact rational a float query value stands for."""
    return Fraction(value).limit_denominator(_QUERY_DENOMINATOR_CAP)


def _axis_rank(axis: Sequence[Fraction], axis_float: Sequence[float], value: float) -> int:
    """``bisect_left(axis, _query_fraction(value))`` without the Fraction.

    Bisects the precomputed float image of the axis and only falls back
    to the exact rational comparison when *value* lands within
    :data:`_EXACT_CHECK_MARGIN` of a neighboring axis value.  Soundness:
    if both neighbors are farther than the margin, the exact axis values
    (within ~1.2e-16 of their float images) and the query's rational
    (within ~1e-12 of *value*) are strictly ordered the same way as
    their float counterparts, so the two bisections agree.
    """
    rank = bisect_left(axis_float, value)
    if rank < len(axis_float) and axis_float[rank] - value < _EXACT_CHECK_MARGIN:
        return bisect_left(axis, _query_fraction(value))
    if rank > 0 and value - axis_float[rank - 1] < _EXACT_CHECK_MARGIN:
        return bisect_left(axis, _query_fraction(value))
    return rank


@dataclass(frozen=True)
class ParameterSetting:
    """A user-chosen (minimum support, minimum confidence) pair."""

    min_support: float
    min_confidence: float

    def __post_init__(self) -> None:
        for name, value in (
            ("min_support", self.min_support),
            ("min_confidence", self.min_confidence),
        ):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValidationError(f"{name} must be a number, got {value!r}")
            if not 0.0 <= float(value) <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class StableRegion:
    """One time-aware stable region of a window's parameter space.

    ``support_floor``/``confidence_floor`` are the largest distinct
    values strictly below the cut (or the generation threshold when the
    cut is the smallest value): the region is the half-open box
    ``(support_floor, cut.support] x (confidence_floor, cut.confidence]``.
    An empty region (setting above every location) has ``cut is None``.
    """

    window: int
    cut: Optional[Location]
    support_floor: Fraction
    confidence_floor: Fraction
    ruleset_size: int

    @property
    def is_empty(self) -> bool:
        """True when no rules satisfy any setting inside this region."""
        return self.cut is None

    def contains(self, setting: ParameterSetting) -> bool:
        """True if *setting* falls inside this region's half-open box."""
        supp = _query_fraction(setting.min_support)
        conf = _query_fraction(setting.min_confidence)
        supp_ok = supp > self.support_floor and (
            self.cut is None or supp <= self.cut.support
        )
        conf_ok = conf > self.confidence_floor and (
            self.cut is None or conf <= self.cut.confidence
        )
        return supp_ok and conf_ok


class WindowSlice:
    """The EPS index slice of a single basic window.

    Args:
        window: basic window index this slice belongs to.
        groups: parametric location -> rule ids (Lemma 2 grouping).
        item_index_source: optional mapping rule id -> rule items; when
            given, each location additionally carries an inverted
            item -> rules index (the TARA-S variant enabling content
            queries, at extra build and merge cost).
        generation_setting: the offline thresholds the window was mined
            at; queries below them would be answered incompletely and
            are rejected.
    """

    window: int
    generation_setting: ParameterSetting
    location_count: int
    supports: List[Fraction]
    confidences: List[Fraction]
    _supports_float: List[float]
    _confidences_float: List[float]
    _generation_support: Fraction
    _generation_confidence: Fraction
    _rows: List[List[Tuple[int, Tuple[RuleId, ...]]]]
    _rule_count: int
    _region_rulesets: Dict[Tuple[int, int], Tuple[RuleId, ...]]
    _row_maps_cache: Optional[List[Dict[int, Tuple[RuleId, ...]]]]
    _item_index: Optional[List[List[Tuple[int, Dict[ItemId, Tuple[RuleId, ...]]]]]]

    def __init__(
        self,
        window: int,
        groups: Dict[Location, List[RuleId]],
        *,
        generation_setting: ParameterSetting,
        item_index_source: Optional[Dict[RuleId, Sequence[ItemId]]] = None,
    ) -> None:
        supports, confidences = distinct_axes(groups)
        support_rank = {value: i for i, value in enumerate(supports)}
        confidence_rank = {value: i for i, value in enumerate(confidences)}
        entries = [
            (
                support_rank[location.support],
                confidence_rank[location.confidence],
                tuple(rule_ids),
            )
            for location, rule_ids in groups.items()
        ]
        self._setup(
            window, generation_setting, supports, confidences, entries,
            item_index_source,
        )

    @classmethod
    def from_count_groups(
        cls,
        window: int,
        window_size: int,
        groups: Dict[CountLocation, List[RuleId]],
        *,
        generation_setting: ParameterSetting,
        item_index_source: Optional[Dict[RuleId, Sequence[ItemId]]] = None,
    ) -> "WindowSlice":
        """Build a slice from the count-native Lemma 2 grouping.

        The hot offline path: axes (and their validation) come from
        :func:`repro.core.locations.count_axes` at the distinct-value
        boundary, and rows are placed by integer rank without ever
        constructing a ``Fraction`` or ``Location`` per scored rule.
        Produces a slice bit-identical to ``WindowSlice(window,
        group_by_location(scored), ...)`` — the cross-miner fingerprint
        gate of ``repro bench`` covers exactly this equality.
        """
        supports, confidences, support_rank, confidence_rank = count_axes(
            window_size, groups
        )
        entries = [
            (support_rank[rule_count], confidence_rank[(p, q)], tuple(rule_ids))
            for (rule_count, p, q), rule_ids in groups.items()
        ]
        window_slice = cls.__new__(cls)
        window_slice._setup(
            window, generation_setting, supports, confidences, entries,
            item_index_source,
        )
        return window_slice

    def _setup(
        self,
        window: int,
        generation_setting: ParameterSetting,
        supports: List[Fraction],
        confidences: List[Fraction],
        entries: List[Tuple[int, int, Tuple[RuleId, ...]]],
        item_index_source: Optional[Dict[RuleId, Sequence[ItemId]]],
    ) -> None:
        """Shared constructor core: place ``(si, ci, rule_ids)`` entries."""
        self.window = window
        self.generation_setting = generation_setting
        self.location_count = len(entries)
        self.supports = supports
        self.confidences = confidences
        # Float images of the exact axes: the bisection in _cut_ranks
        # runs on these, with the exact values only consulted at
        # boundary hits (see _axis_rank).
        self._supports_float = [float(value) for value in supports]
        self._confidences_float = [float(value) for value in confidences]
        self._generation_support = _query_fraction(generation_setting.min_support)
        self._generation_confidence = _query_fraction(
            generation_setting.min_confidence
        )

        # rows[si] = sorted list of (confidence rank, rule-id tuple)
        self._rows = [[] for _ in supports]
        self._rule_count = 0
        for si, ci, rule_ids in entries:
            self._rows[si].append((ci, rule_ids))
            self._rule_count += len(rule_ids)
        for row in self._rows:
            row.sort()

        # Per-region ruleset memo: cut ranks -> sorted rule-id tuple.
        # Every setting inside one stable region shares the entry (the
        # paper's equivalence), so repeated queries cost one dict hit.
        self._region_rulesets = {}
        self._row_maps_cache = None

        # TARA-S: per-location inverted item index.
        self._item_index = None
        if item_index_source is not None:
            self._item_index = []
            for row in self._rows:
                indexed_row: List[Tuple[int, Dict[ItemId, Tuple[RuleId, ...]]]] = []
                for ci, row_rule_ids in row:
                    inverted: Dict[ItemId, List[RuleId]] = {}
                    for rule_id in row_rule_ids:
                        for item in item_index_source[rule_id]:
                            inverted.setdefault(item, []).append(rule_id)
                    indexed_row.append(
                        (ci, {item: tuple(ids) for item, ids in inverted.items()})
                    )
                self._item_index.append(indexed_row)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def rule_count(self) -> int:
        """Number of (rule, location) pairs indexed in this window."""
        return self._rule_count

    @property
    def has_item_index(self) -> bool:
        """True when built as the TARA-S variant."""
        return self._item_index is not None

    def locations(self) -> Iterator[Tuple[Location, Tuple[RuleId, ...]]]:
        """Iterate every occupied location with its rules."""
        for si, row in enumerate(self._rows):
            for ci, rule_ids in row:
                yield (
                    Location(self.supports[si], self.confidences[ci]),
                    rule_ids,
                )

    # ------------------------------------------------------------------
    # region identification
    # ------------------------------------------------------------------
    def _cut_ranks(self, setting: ParameterSetting) -> Tuple[int, int]:
        """Grid ranks of the setting's cut location (may be one past end).

        Float bisection over the precomputed axis images; the exact
        rational comparison (two ``Fraction`` constructions in the old
        implementation, on *every* query) now only runs when the setting
        lands within :data:`_EXACT_CHECK_MARGIN` of an axis value.
        """
        self._check_setting(setting)
        return (
            _axis_rank(self.supports, self._supports_float, setting.min_support),
            _axis_rank(
                self.confidences, self._confidences_float, setting.min_confidence
            ),
        )

    def _check_setting(self, setting: ParameterSetting) -> None:
        gen = self.generation_setting
        if (
            setting.min_support < gen.min_support
            or setting.min_confidence < gen.min_confidence
        ):
            raise QueryError(
                f"setting {setting} lies below the generation thresholds "
                f"({gen.min_support}, {gen.min_confidence}); the index only "
                "covers the space above them"
            )

    def region_ranks(self, setting: ParameterSetting) -> Tuple[int, int]:
        """Grid ranks ``(si, ci)`` of the stable region containing *setting*.

        The ranks index the distinct support/confidence axes; a rank one
        past the end of an axis denotes the empty region above every
        location.  Two settings share both ranks iff they lie in the same
        time-aware stable region of this window — the integer identity
        the online serving layer keys its cache on (never raw floats).
        """
        return self._cut_ranks(setting)

    def region_id(self, setting: ParameterSetting) -> int:
        """The enclosing stable region as one canonical integer.

        Encodes :meth:`region_ranks` as ``si * (|confidences| + 1) + ci``
        (the ``+ 1`` accommodates the one-past-end rank of the empty
        region), giving every stable region of this window a distinct,
        stable, float-free id.  Ids are only meaningful within one
        window; cross-window cache keys must pair them with the window
        index.
        """
        si, ci = self._cut_ranks(setting)
        return si * (len(self.confidences) + 1) + ci

    def region_for(self, setting: ParameterSetting) -> StableRegion:
        """The stable region containing *setting* (Q3's primitive).

        The region's cut location is the smallest grid point whose both
        coordinates are >= the setting; its floors are the next smaller
        distinct values (or the generation thresholds).
        """
        si, ci = self._cut_ranks(setting)
        return self.region_at_ranks(si, ci)

    def region_at_ranks(self, si: int, ci: int) -> StableRegion:
        """The stable region with cut ranks ``(si, ci)``, rank-natively.

        Ranks one past the end of an axis denote the empty region above
        every location; anything outside ``[0, len(axis)]`` is rejected.
        This is :meth:`region_for` with the float-to-rank resolution
        already done — neighbor enumeration uses it directly instead of
        round-tripping axis values through float probe settings.
        """
        if not 0 <= si <= len(self.supports) or not 0 <= ci <= len(self.confidences):
            raise QueryError(
                f"cut ranks ({si}, {ci}) outside the {len(self.supports)} x "
                f"{len(self.confidences)} cut grid of window {self.window}"
            )
        support_floor = self.supports[si - 1] if si > 0 else self._generation_support
        confidence_floor = (
            self.confidences[ci - 1] if ci > 0 else self._generation_confidence
        )
        if si >= len(self.supports) or ci >= len(self.confidences):
            return StableRegion(
                window=self.window,
                cut=None,
                support_floor=support_floor,
                confidence_floor=confidence_floor,
                ruleset_size=0,
            )
        cut = Location(self.supports[si], self.confidences[ci])
        ruleset_size = len(self.ruleset_for_region(si, ci))
        return StableRegion(
            window=self.window,
            cut=cut,
            support_floor=support_floor,
            confidence_floor=confidence_floor,
            ruleset_size=ruleset_size,
        )

    # ------------------------------------------------------------------
    # ruleset collection
    # ------------------------------------------------------------------
    def _iter_dominated(self, si: int, ci: int) -> Iterator[Tuple[int, int]]:
        """Grid coordinates of occupied locations dominated by rank (si, ci)."""
        for row_index in range(si, len(self._rows)):
            row = self._rows[row_index]
            start = bisect_left(row, (ci, ()))
            for position in range(start, len(row)):
                yield row_index, position

    def _iter_dominated_rules(
        self, si: int, ci: int
    ) -> Iterator[Tuple[Tuple[int, int], Tuple[RuleId, ...]]]:
        for row_index, position in self._iter_dominated(si, ci):
            yield (row_index, position), self._rows[row_index][position][1]

    def ruleset_for_region(self, si: int, ci: int) -> Tuple[RuleId, ...]:
        """Sorted ruleset of the stable region with cut ranks ``(si, ci)``.

        Memoized per region: the first request pays the staircase scan,
        every later request — from *any* setting inside the region — is
        a dict hit.  The memo only caches computed tuples, so a racing
        duplicate computation is benign (both produce the same value).
        """
        key = (si, ci)
        cached = self._region_rulesets.get(key)
        if cached is None:
            collected: List[RuleId] = []
            for _, rule_ids in self._iter_dominated_rules(si, ci):
                collected.extend(rule_ids)
            collected.sort()
            cached = tuple(collected)
            self._region_rulesets[key] = cached
        return cached

    def collect(self, setting: ParameterSetting) -> List[RuleId]:
        """All rules valid at *setting* in this window (staircase scan).

        This is the TARA answer to a traditional mining request: a pure
        index lookup, no re-derivation.  Resolves through the stable
        region's memoized ruleset (:meth:`ruleset_for_region`), so every
        setting in one region shares a single scan.
        """
        si, ci = self._cut_ranks(setting)
        return list(self.ruleset_for_region(si, ci))

    def _row_maps(self) -> List[Dict[int, Tuple[RuleId, ...]]]:
        """Cached dict view of each row (confidence rank -> rule ids)."""
        cached = self._row_maps_cache
        if cached is None:
            cached = [dict(row) for row in self._rows]
            self._row_maps_cache = cached
        return cached

    def collect_bfs(self, setting: ParameterSetting) -> List[RuleId]:
        """Same ruleset via breadth-first walk of the domination grid.

        Paper-literal strategy: start at the query's region and visit
        every region it dominates through the (si+1, ci) / (si, ci+1)
        neighbor edges.  Kept for the ablation benchmark.
        """
        si, ci = self._cut_ranks(setting)
        result: List[RuleId] = []
        seen: Set[Tuple[int, int]] = set()
        frontier: List[Tuple[int, int]] = [(si, ci)]
        row_maps = self._row_maps()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            row_index, conf_index = node
            if row_index >= len(self.supports) or conf_index >= len(self.confidences):
                continue
            rule_ids = row_maps[row_index].get(conf_index)
            if rule_ids:
                result.extend(rule_ids)
            frontier.append((row_index + 1, conf_index))
            frontier.append((row_index, conf_index + 1))
        result.sort()
        return result

    def collect_items(
        self, setting: ParameterSetting, items: Sequence[ItemId]
    ) -> List[RuleId]:
        """Q5 content query: valid rules mentioning *any* of *items*.

        Requires the TARA-S item index; merges the per-location inverted
        indexes of every dominated location.
        """
        if self._item_index is None:
            raise QueryError(
                "content queries need the TARA-S item index "
                "(build with build_item_index=True)"
            )
        si, ci = self._cut_ranks(setting)
        wanted = set(items)
        result: Set[RuleId] = set()
        for row_index in range(si, len(self._rows)):
            row = self._rows[row_index]
            start = bisect_left(row, (ci, ()))
            indexed_row = self._item_index[row_index]
            for position in range(start, len(row)):
                inverted = indexed_row[position][1]
                for item in wanted:
                    ids = inverted.get(item)
                    if ids:
                        result.update(ids)
        return sorted(result)

    # ------------------------------------------------------------------
    # recommendation support
    # ------------------------------------------------------------------
    def neighbor_regions(
        self, setting: ParameterSetting
    ) -> Dict[str, StableRegion]:
        """Adjacent stable regions in the four axis directions.

        Used by parameter recommendation: each neighbor tells the
        analyst what changes if they loosen/tighten one threshold past
        the region boundary.  Directions without a neighbor (already at
        the edge of the indexed space) are omitted.
        """
        si, ci = self._cut_ranks(setting)
        neighbors: Dict[str, StableRegion] = {}
        # Rank-native: step directly on the cut grid.  The previous
        # implementation round-tripped exact axis values through float
        # probe settings (with a +1e-9 nudge past the last value), which
        # could resolve to the wrong region when adjacent axis values
        # collide under float rounding.
        if si > 0:
            neighbors["looser_support"] = self.region_at_ranks(si - 1, ci)
        if si + 1 <= len(self.supports):
            neighbors["tighter_support"] = self.region_at_ranks(si + 1, ci)
        if ci > 0:
            neighbors["looser_confidence"] = self.region_at_ranks(si, ci - 1)
        if ci + 1 <= len(self.confidences):
            neighbors["tighter_confidence"] = self.region_at_ranks(si, ci + 1)
        return neighbors
