"""Lazy, memory-bounded knowledge base over a v2 container.

Loading a format-v2 file does **not** rebuild the knowledge base
eagerly.  Instead:

* :class:`ShardedArchive` — a :class:`~repro.core.archive.TarArchive`
  whose reads scatter-gather across the container's shards through a
  :class:`~repro.core.storage.reader.ShardedSeriesSource`: a rule
  lookup touches exactly one shard block (decoded series kept under the
  ``memory_budget`` LRU), never the whole file.  The archive is
  read-only: windows arrive via copy-on-write snapshot publication
  (:meth:`clone` materializes an appendable in-memory successor), never
  by mutating the mapped file.
* :class:`LazyTaraKnowledgeBase` — materializes each window's
  :class:`~repro.core.regions.WindowSlice` from the container's window
  block on first touch, by the same count-native construction the v1
  loader and the offline builder use, so every query answer is
  byte-identical to the eager path (fingerprint-gated by
  ``repro bench-persist``).

The catalog and the two top-level directories are the only state built
at load time; resident size is O(rules) for the catalog plus the byte
budget, not O(rules x windows).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import UnknownWindowError, ValidationError
from repro.common.timing import PhaseTimer
from repro.core.archive import TarArchive
from repro.core.builder import GenerationConfig, TaraKnowledgeBase
from repro.core.locations import group_by_counts
from repro.core.regions import WindowSlice
from repro.core.storage.codec import Entry
from repro.core.storage.reader import ShardedSeriesSource
from repro.data.periods import PeriodSpec
from repro.mining.rules import RuleCatalog, RuleId, ScoredRule


class ShardedArchive(TarArchive):
    """A read-only ``TarArchive`` whose series live in a v2 container.

    Every read path of the base class funnels through ``_entries`` /
    ``encoded_series`` / ``rule_ids``; overriding those four plus the
    membership pair redirects the whole measure/roll-up API at the
    mmap-backed source without duplicating any of its logic.
    """

    def __init__(
        self,
        source: ShardedSeriesSource,
        window_sizes: List[int],
        missing_count_bounds: List[int],
    ) -> None:
        super().__init__()
        self._source = source
        self._window_sizes = list(window_sizes)
        self._missing_count_bounds = list(missing_count_bounds)

    @property
    def source(self) -> ShardedSeriesSource:
        """The underlying container reader (for counters and ``close``)."""
        return self._source

    # ------------------------------------------------------------------
    # reads: scatter-gather through the SeriesSource
    # ------------------------------------------------------------------
    def _entries(self, rule_id: RuleId) -> List[Entry]:
        return self._source.series_entries(rule_id)

    def encoded_series(self, rule_id: RuleId) -> bytes:
        """One rule's canonical byte encoding, sliced out of the map."""
        return self._source.encoded_series(rule_id)

    def rule_ids(self) -> Iterator[RuleId]:
        """All archived rule ids, ascending across shards."""
        return self._source.rule_ids()

    def __contains__(self, rule_id: RuleId) -> bool:
        return rule_id in self._source

    def __len__(self) -> int:
        return len(self._source)

    def entry_count(self) -> int:
        """Total archived (rule, window) entries, from the meta counts.

        Falls back to a full decode only when the container predates
        the count hints (never for files this writer produced).
        """
        hint = self._source.meta.get("counts", {}).get("entries")
        if isinstance(hint, int):
            return hint
        return super().entry_count()

    def encoded_size_bytes(self) -> int:
        """Bytes of sealed series (the Figure 12 number), from meta."""
        hint = self._source.meta.get("counts", {}).get("encoded_bytes")
        if isinstance(hint, int):
            return hint
        return sum(len(self._source.encoded_series(r)) for r in self.rule_ids())

    # ------------------------------------------------------------------
    # writes: refused (the container is immutable); clone materializes
    # ------------------------------------------------------------------
    def begin_window(self, window_size: int, missing_count_bound: int) -> int:
        """Refused: the mapped container cannot grow in place."""
        raise ValidationError(
            "a sharded archive is read-only; clone() it to append windows"
        )

    def record(self, window: int, scored_rules: object) -> int:
        """Refused: the mapped container cannot grow in place."""
        raise ValidationError(
            "a sharded archive is read-only; clone() it to append windows"
        )

    def seal(self) -> None:
        """No-op: the container's series are already in sealed encoding."""

    def clone(self) -> TarArchive:
        """An appendable in-memory successor holding every sealed blob.

        Copy-on-write publication needs an archive it can append to;
        materializing the sealed blobs (not the decoded entries) keeps
        the clone as compact as a freshly sealed eager archive.
        """
        copy = TarArchive()
        copy._sealed = {
            rule_id: self._source.encoded_series(rule_id)
            for rule_id in self._source.rule_ids()
        }
        copy._window_sizes = list(self._window_sizes)
        copy._missing_count_bounds = list(self._missing_count_bounds)
        return copy


class LazyTaraKnowledgeBase(TaraKnowledgeBase):
    """A ``TaraKnowledgeBase`` that materializes per window, on demand.

    The dataclass ``slices`` / ``rules_in_window`` lists stay empty;
    :meth:`slice` and :meth:`candidate_rules` answer from the container
    instead, caching what they materialize.  A materialized slice is
    bit-identical to the one the offline builder produced (same
    count-native construction from the same counts), so explorer
    answers cannot differ from the eager load.
    """

    def __post_init_lazy(self, sharded: ShardedArchive) -> None:
        # Not a dataclass field: the lazy caches are derived state.
        self._sharded = sharded
        self._slice_cache: Dict[int, WindowSlice] = {}
        self._window_rule_ids: Dict[int, List[RuleId]] = {}

    @classmethod
    def from_source(
        cls,
        source: ShardedSeriesSource,
        *,
        config: GenerationConfig,
        catalog: RuleCatalog,
        window_sizes: List[int],
        missing_count_bounds: List[int],
    ) -> "LazyTaraKnowledgeBase":
        sharded = ShardedArchive(source, window_sizes, missing_count_bounds)
        knowledge_base = cls(
            config=config,
            catalog=catalog,
            archive=sharded,
            window_sizes=list(window_sizes),
            timer=PhaseTimer(),
        )
        knowledge_base.__post_init_lazy(sharded)
        return knowledge_base

    # ------------------------------------------------------------------
    # window-indexed surface, redirected at the container
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Number of windows in the container (none need be resident)."""
        return len(self.window_sizes)

    def all_windows(self) -> PeriodSpec:
        """Spec naming every window of the container."""
        return PeriodSpec(range(len(self.window_sizes)))

    def slice(self, window: int) -> WindowSlice:
        """The EPS slice of one window, materialized on first touch.

        Built from the container's window block by the same
        count-native construction as the offline builder, so it is
        bit-identical to the eager load's slice.
        """
        cached = self._slice_cache.get(window)
        if cached is not None:
            return cached
        if not 0 <= window < len(self.window_sizes):
            raise UnknownWindowError(
                f"window {window} out of range [0, {len(self.window_sizes)})"
            )
        scored = self._scored_rules(window)
        item_source: Optional[Dict[RuleId, object]] = None
        if self.config.build_item_index:
            item_source = {s.rule_id: s.rule.items for s in scored}
        window_slice = WindowSlice.from_count_groups(
            window,
            self.window_sizes[window],
            group_by_counts(scored),
            generation_setting=self.config.setting,
            item_index_source=item_source,  # type: ignore[arg-type]
        )
        self._slice_cache[window] = window_slice
        return window_slice

    def candidate_rules(self, spec: PeriodSpec) -> List[RuleId]:
        """Union of rules archived in any window of *spec* (sorted ids).

        Answered from the window blocks' id columns — no per-rule
        series is decoded.
        """
        seen: set[RuleId] = set()
        for window in spec:
            cached = self._window_rule_ids.get(window)
            if cached is None:
                if not 0 <= window < len(self.window_sizes):
                    raise UnknownWindowError(
                        f"window {window} out of range "
                        f"[0, {len(self.window_sizes)})"
                    )
                cached = [
                    entry[0]
                    for entry in self._sharded.source.window_entries(window)
                ]
                self._window_rule_ids[window] = cached
            seen.update(cached)
        return sorted(seen)

    def _scored_rules(self, window: int) -> List[ScoredRule]:
        """One window's scored rules, reconstructed from its window block."""
        size = self.window_sizes[window]
        catalog_get = self.catalog.get
        return [
            ScoredRule(
                rule_id=rule_id,
                rule=catalog_get(rule_id),
                support=rule_count / size if size else 0.0,
                confidence=(
                    rule_count / antecedent_count if antecedent_count else 0.0
                ),
                rule_count=rule_count,
                antecedent_count=antecedent_count,
                window_size=size,
                consequent_count=consequent_count,
            )
            for rule_id, rule_count, antecedent_count, consequent_count
            in self._sharded.source.window_entries(window)
        ]

    # ------------------------------------------------------------------
    # copy-on-write publication
    # ------------------------------------------------------------------
    def clone(self) -> TaraKnowledgeBase:
        """An appendable eager successor (for snapshot publication).

        Ingest appends windows; the container cannot grow in place, so
        the successor materializes every slice and window id list once.
        The result is a plain in-memory knowledge base — subsequent
        publications clone it cheaply as usual.
        """
        return TaraKnowledgeBase(
            config=self.config,
            catalog=self.catalog.clone(),
            archive=self._sharded.clone(),
            slices=[self.slice(w) for w in range(len(self.window_sizes))],
            rules_in_window=[
                list(
                    self._window_rule_ids.get(w)
                    or [e[0] for e in self._sharded.source.window_entries(w)]
                )
                for w in range(len(self.window_sizes))
            ],
            window_sizes=list(self.window_sizes),
            timer=self.timer,
        )

    def storage_counters(self) -> Dict[str, int]:
        """Shard/window/LRU accounting from the underlying reader."""
        counters = dict(self._sharded.source.counters())
        counters["slices_materialized"] = len(self._slice_cache)
        return counters

    def close(self) -> None:
        """Release the mmap (queries after this will fail)."""
        self._sharded.source.close()
