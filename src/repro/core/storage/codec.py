"""The canonical per-rule series codec (delta + zigzag varints).

One byte string per rule: a sequence of ``(window-gap, Δ rule-count,
Δ antecedent-margin, Δ consequent-margin)`` entries.  Window ids are
strictly increasing so gaps are small positive ints; counts of a
surviving rule drift slowly so deltas are near zero — the typical entry
costs 4 bytes ("our specially designed encoding and decoding
strategies", paper Section 2.1.5).

This module is the codec's home since the storage layer grew its own
binary container (format v2): the v2 shard blocks store exactly these
byte strings raw, so both the in-memory archive
(:mod:`repro.core.archive`) and the mmap reader
(:mod:`repro.core.storage.reader`) must share one implementation.  The
archive re-exports :func:`encode_series`/:func:`decode_series` under
their historical private names.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import CodecError
from repro.common.varint import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)

#: One staged archive entry:
#: (window, rule_count, antecedent_count, consequent_count).
Entry = Tuple[int, int, int, int]


def encode_series(series: List[Entry]) -> bytes:
    """Encode a rule's (window, counts...) series.

    Wire layout per entry: window gap (uvarint), then zigzag-varint
    deltas of the rule count and of the two margins
    ``antecedent - rule`` and ``consequent - rule`` (both non-negative
    by definition, and near-constant for a stable rule).
    """
    out = bytearray()
    previous_window = -1
    previous_rule_count = 0
    previous_margin = 0
    previous_consequent_margin = 0
    for window, rule_count, antecedent_count, consequent_count in series:
        if antecedent_count < rule_count or consequent_count < rule_count:
            raise CodecError(
                f"marginal counts ({antecedent_count}, {consequent_count}) "
                f"below rule count {rule_count}"
            )
        gap = window - previous_window
        if gap <= 0:
            raise CodecError("archive series windows must be strictly increasing")
        margin = antecedent_count - rule_count
        consequent_margin = consequent_count - rule_count
        encode_uvarint(gap, out)
        encode_svarint(rule_count - previous_rule_count, out)
        encode_svarint(margin - previous_margin, out)
        encode_svarint(consequent_margin - previous_consequent_margin, out)
        previous_window = window
        previous_rule_count = rule_count
        previous_margin = margin
        previous_consequent_margin = consequent_margin
    return bytes(out)


def decode_series(blob: bytes) -> List[Entry]:
    """Inverse of :func:`encode_series`."""
    series: List[Entry] = []
    offset = 0
    window = -1
    rule_count = 0
    margin = 0
    consequent_margin = 0
    while offset < len(blob):
        gap, offset = decode_uvarint(blob, offset)
        rule_count_delta, offset = decode_svarint(blob, offset)
        margin_delta, offset = decode_svarint(blob, offset)
        consequent_margin_delta, offset = decode_svarint(blob, offset)
        window += gap
        rule_count += rule_count_delta
        margin += margin_delta
        consequent_margin += consequent_margin_delta
        if rule_count < 0 or margin < 0 or consequent_margin < 0:
            raise CodecError("corrupt archive series: negative decoded count")
        series.append(
            (window, rule_count, rule_count + margin, rule_count + consequent_margin)
        )
    return series
