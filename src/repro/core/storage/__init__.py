"""Segmented binary KB storage: the format-v2 container stack.

This package is the persistence substrate introduced for 10-100x
knowledge bases: a flat mmap-able container of already varint-encoded
rule series, sharded by rule-id range, read lazily under a byte budget.
It sits *below* :mod:`repro.core` in the layer order — core's archive
and persistence modules call down into it; nothing here imports core.

Modules:

* :mod:`~repro.core.storage.codec` — the canonical per-rule series
  byte codec (shared with the in-memory archive);
* :mod:`~repro.core.storage.format` — on-disk layout constants;
* :mod:`~repro.core.storage.writer` — deterministic v2 writer;
* :mod:`~repro.core.storage.reader` — lazy, memory-bounded mmap reader;
* :mod:`~repro.core.storage.lru` — the byte-budgeted LRU behind it;
* :mod:`~repro.core.storage.source` — the :class:`SeriesSource`
  protocol the query layer reads through.
"""

from repro.core.storage.codec import Entry, decode_series, encode_series
from repro.core.storage.format import (
    CONTAINER_FORMAT_VERSION,
    DEFAULT_SHARD_SIZE,
    MAGIC,
)
from repro.core.storage.lru import ByteBudgetLRU, series_cost
from repro.core.storage.reader import ShardedSeriesSource
from repro.core.storage.source import SeriesSource
from repro.core.storage.writer import WindowEntry, write_container

__all__ = [
    "CONTAINER_FORMAT_VERSION",
    "DEFAULT_SHARD_SIZE",
    "MAGIC",
    "Entry",
    "ByteBudgetLRU",
    "SeriesSource",
    "ShardedSeriesSource",
    "WindowEntry",
    "decode_series",
    "encode_series",
    "series_cost",
    "write_container",
]
