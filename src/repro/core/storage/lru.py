"""A byte-budgeted LRU for decoded archive slices.

The v2 read path (:mod:`repro.core.storage.reader`) materializes a
rule's decoded series only on first touch; this container is what keeps
the *sum* of those materializations bounded.  Each cached value carries
an explicit byte cost (the reader charges a deterministic estimate of
the decoded Python structure, see :func:`series_cost`); inserting past
the budget evicts least-recently-used entries until the total fits
again.  Counters (hits, misses, evictions, current/peak charged bytes)
feed the storage section of the serving metrics and the
``repro bench-persist`` artefact.

Thread safety: the serving tier executes queries on a thread pool, so
every public method takes the container's own lock — the LRU is shared
by all readers of one mmap'd knowledge base.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.common.errors import ValidationError

K = TypeVar("K")
V = TypeVar("V")

#: Deterministic per-entry cost estimate for one decoded series entry: a
#: 4-tuple of small ints costs ~72 bytes of tuple header + slots plus
#: the list cell, measured on CPython 3.10-3.12 (sys.getsizeof of the
#: tuple is 72; ints below 2**30 are interned or shared).  The charge is
#: deliberately a *model*, not a live measurement: budgets must mean the
#: same thing on every run of the same workload.
DECODED_ENTRY_COST = 88

#: Fixed overhead charged per cached series (list header + dict slot).
SERIES_BASE_COST = 120


def series_cost(entry_count: int) -> int:
    """Charged bytes for a decoded series of *entry_count* entries."""
    return SERIES_BASE_COST + entry_count * DECODED_ENTRY_COST


class ByteBudgetLRU(Generic[K, V]):
    """LRU mapping with a total byte budget instead of an entry count.

    Args:
        budget_bytes: maximum total charged bytes; ``None`` disables
            eviction (the cache only counts).  A value that alone
            exceeds the budget is returned to the caller but *not*
            cached — retaining it would immediately evict everything
            else for a value that can never fit.
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValidationError(
                f"memory budget must be positive, got {budget_bytes}"
            )
        self._lock = threading.Lock()
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[K, Tuple[V, int]]" = OrderedDict()  # repro-lint: guarded-by=_lock
        self._current_bytes = 0  # repro-lint: guarded-by=_lock
        self._peak_bytes = 0  # repro-lint: guarded-by=_lock
        self._hits = 0  # repro-lint: guarded-by=_lock
        self._misses = 0  # repro-lint: guarded-by=_lock
        self._evictions = 0  # repro-lint: guarded-by=_lock
        self._rejected = 0  # repro-lint: guarded-by=_lock

    def get(self, key: K) -> Optional[V]:
        """The cached value for *key* (refreshed as most recent), or None."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return cached[0]

    def put(self, key: K, value: V, cost: int) -> None:
        """Cache *value* charged at *cost* bytes, evicting LRU entries.

        Replacing an existing key re-charges it at the new cost.  An
        entry whose lone cost exceeds the whole budget is rejected (and
        counted) instead of wiping the cache for nothing.
        """
        if cost < 0:
            raise ValidationError(f"cost must be >= 0, got {cost}")
        with self._lock:
            if self.budget_bytes is not None and cost > self.budget_bytes:
                self._rejected += 1
                return
            existing = self._entries.pop(key, None)
            if existing is not None:
                self._current_bytes -= existing[1]
            self._entries[key] = (value, cost)
            self._current_bytes += cost
            if self.budget_bytes is not None:
                while self._current_bytes > self.budget_bytes and len(self._entries) > 1:
                    _, (_, evicted_cost) = self._entries.popitem(last=False)
                    self._current_bytes -= evicted_cost
                    self._evictions += 1
                # The newest entry alone may still exceed the budget when
                # cost <= budget < cost + anything; that case cannot
                # happen (we evicted down to one entry of cost <= budget).
            if self._current_bytes > self._peak_bytes:
                self._peak_bytes = self._current_bytes

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> Dict[str, int]:
        """JSON-friendly snapshot of the cache accounting."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "budget_bytes": self.budget_bytes or 0,
                "current_bytes": self._current_bytes,
                "peak_bytes": self._peak_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected": self._rejected,
            }
