"""The narrow protocol behind which ``TarArchive`` reads its series.

Query execution (``TaraExplorer``/``WindowSlice`` lookups, Q1-Q5
dispatch) only ever needs four capabilities from the store of per-rule
histories: membership, cardinality, id enumeration, and one rule's
series — encoded or decoded.  :class:`SeriesSource` names exactly that
surface, so the in-memory dict-backed archive and the mmap-backed
sharded reader (:mod:`repro.core.storage.reader`) are interchangeable
underneath :class:`~repro.core.archive.TarArchive` without the query
layer knowing which one it is scattering over.
"""

from __future__ import annotations

from typing import Iterator, List, Protocol, runtime_checkable

from repro.core.storage.codec import Entry


@runtime_checkable
class SeriesSource(Protocol):
    """Read-only supply of per-rule archived series."""

    def __contains__(self, rule_id: int) -> bool:
        """True when the source holds at least one entry for *rule_id*."""

    def __len__(self) -> int:
        """Number of rules with archived series."""

    def rule_ids(self) -> Iterator[int]:
        """All rule ids with archived series, in ascending id order."""

    def encoded_series(self, rule_id: int) -> bytes:
        """One rule's series in the canonical byte encoding.

        Raises :class:`~repro.common.errors.UnknownRuleError` for an
        absent rule.
        """

    def series_entries(self, rule_id: int) -> List[Entry]:
        """One rule's decoded ``(window, counts...)`` entries.

        Implementations may cache; callers must treat the returned list
        as immutable.  Raises
        :class:`~repro.common.errors.UnknownRuleError` for an absent
        rule.
        """
