"""Memory-bounded ``mmap`` reader for v2 KB containers.

Opening a container is cheap and bounded: the reader maps the file,
parses the meta JSON and the two top-level directories, and validates
every directory entry against the file bounds — nothing else is
touched.  From there, everything is on-demand:

* a **shard-local directory** is decoded the first time any rule in its
  id range is looked up (one dict per shard, kept for the reader's
  lifetime — directories are tiny relative to series data);
* a rule's **encoded series** is a zero-copy slice of the map;
* a rule's **decoded series** is materialized on first touch and kept
  in a byte-budgeted :class:`~repro.core.storage.lru.ByteBudgetLRU`, so
  resident decoded state never exceeds ``memory_budget`` regardless of
  how many rules the workload sweeps over;
* a **window block** is decoded when that window's slice is first
  needed.

Every structural problem — bad magic, truncated header, a directory
entry pointing outside the file, a shard whose local directory does not
tile its block — raises :class:`~repro.common.errors.DataFormatError`
(with the underlying codec error chained), never a crash or a silent
partial load.
"""

from __future__ import annotations

import json
import mmap
import os
from bisect import bisect_right
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import (
    CodecError,
    DataFormatError,
    UnknownRuleError,
    UnknownWindowError,
)
from repro.common.varint import decode_uvarint
from repro.core.storage.codec import Entry, decode_series
from repro.core.storage.format import (
    CONTAINER_FORMAT_VERSION,
    HEADER_LEN,
    MAGIC,
    SHARD_DIR_ENTRY,
    U64,
    WINDOW_DIR_ENTRY,
)
from repro.core.storage.lru import ByteBudgetLRU, series_cost
from repro.core.storage.writer import WindowEntry

#: Per-rule slot in a decoded shard-local directory: (offset, length)
#: of the rule's series blob, offset absolute in the file.
_BlobSlot = Tuple[int, int]


class ShardedSeriesSource:
    """Lazy :class:`~repro.core.storage.source.SeriesSource` over a v2 file.

    Args:
        path: container written by
            :func:`repro.core.storage.writer.write_container`.
        memory_budget: byte budget for decoded series kept resident;
            ``None`` keeps everything touched (still lazy, never
            evicted).
    """

    def __init__(self, path: Path, memory_budget: Optional[int] = None) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < HEADER_LEN:
                raise DataFormatError(
                    f"{self.path}: file too short for a v2 container "
                    f"({size} < {HEADER_LEN} bytes)"
                )
            self._map: mmap.mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            self._size = size
            self.meta = self._read_meta()
            self._window_dir = self._read_window_dir()
            self._shard_dir = self._read_shard_dir()
        except Exception:
            self.close()
            raise
        self._first_rule_ids = [entry[0] for entry in self._shard_dir]
        self._total_rules = sum(entry[1] for entry in self._shard_dir)
        self._shard_slots: Dict[int, Dict[int, _BlobSlot]] = {}
        self._decoded = ByteBudgetLRU[int, List[Entry]](memory_budget)
        self._windows_decoded = 0

    # ------------------------------------------------------------------
    # container parsing (eager, bounded)
    # ------------------------------------------------------------------
    def _read_meta(self) -> Dict[str, Any]:
        if bytes(self._map[: len(MAGIC)]) != MAGIC:
            raise DataFormatError(
                f"{self.path}: not a v2 knowledge-base container (bad magic)"
            )
        (meta_len,) = U64.unpack_from(self._map, len(MAGIC))
        self._cursor = HEADER_LEN + meta_len
        if self._cursor > self._size:
            raise DataFormatError(
                f"{self.path}: meta length {meta_len} exceeds file size"
            )
        try:
            meta = json.loads(bytes(self._map[HEADER_LEN : self._cursor]))
        except (ValueError, UnicodeDecodeError) as error:
            raise DataFormatError(
                f"{self.path}: container meta is not valid JSON: {error}"
            ) from error
        if not isinstance(meta, dict):
            raise DataFormatError(f"{self.path}: container meta must be an object")
        version = meta.get("format_version")
        if version != CONTAINER_FORMAT_VERSION:
            raise DataFormatError(
                f"{self.path}: unsupported container format version {version!r}"
            )
        return meta

    def _read_count(self, what: str) -> int:
        if self._cursor + U64.size > self._size:
            raise DataFormatError(f"{self.path}: truncated {what} directory")
        (count,) = U64.unpack_from(self._map, self._cursor)
        self._cursor += U64.size
        return count

    def _read_window_dir(self) -> List[Tuple[int, int]]:
        count = self._read_count("window")
        end = self._cursor + count * WINDOW_DIR_ENTRY.size
        if end > self._size:
            raise DataFormatError(f"{self.path}: truncated window directory")
        entries: List[Tuple[int, int]] = []
        for _ in range(count):
            offset, length = WINDOW_DIR_ENTRY.unpack_from(self._map, self._cursor)
            self._cursor += WINDOW_DIR_ENTRY.size
            self._check_span("window block", offset, length)
            entries.append((offset, length))
        return entries

    def _read_shard_dir(self) -> List[Tuple[int, int, int, int]]:
        count = self._read_count("shard")
        end = self._cursor + count * SHARD_DIR_ENTRY.size
        if end > self._size:
            raise DataFormatError(f"{self.path}: truncated shard directory")
        entries: List[Tuple[int, int, int, int]] = []
        previous_first = -1
        for _ in range(count):
            first_rule_id, rule_count, offset, length = SHARD_DIR_ENTRY.unpack_from(
                self._map, self._cursor
            )
            self._cursor += SHARD_DIR_ENTRY.size
            if first_rule_id <= previous_first:
                raise DataFormatError(
                    f"{self.path}: shard directory first-rule ids not "
                    f"strictly increasing at {first_rule_id}"
                )
            if rule_count == 0:
                raise DataFormatError(f"{self.path}: shard directory lists an empty shard")
            self._check_span("shard block", offset, length)
            entries.append((first_rule_id, rule_count, offset, length))
            previous_first = first_rule_id
        return entries

    def _check_span(self, what: str, offset: int, length: int) -> None:
        if offset < HEADER_LEN or offset + length > self._size:
            raise DataFormatError(
                f"{self.path}: {what} span [{offset}, {offset + length}) "
                f"outside file of {self._size} byte(s)"
            )

    # ------------------------------------------------------------------
    # lazy shard access
    # ------------------------------------------------------------------
    def _shard_index_for(self, rule_id: int) -> Optional[int]:
        index = bisect_right(self._first_rule_ids, rule_id) - 1
        return index if index >= 0 else None

    def _slots(self, shard_index: int) -> Dict[int, _BlobSlot]:
        """The shard's rule-id -> blob-span map, decoding it on first touch."""
        slots = self._shard_slots.get(shard_index)
        if slots is not None:
            return slots
        first_rule_id, rule_count, offset, length = self._shard_dir[shard_index]
        block = self._map[offset : offset + length]
        slots = {}
        position = 0
        rule_id = first_rule_id - 1
        lengths: List[Tuple[int, int]] = []
        try:
            for _ in range(rule_count):
                gap, position = decode_uvarint(block, position)
                blob_length, position = decode_uvarint(block, position)
                if gap == 0:
                    raise DataFormatError(
                        f"{self.path}: shard {shard_index} local directory "
                        f"has a non-increasing rule id"
                    )
                rule_id += gap
                lengths.append((rule_id, blob_length))
        except CodecError as error:
            raise DataFormatError(
                f"{self.path}: corrupt local directory in shard "
                f"{shard_index}: {error}"
            ) from error
        blob_offset = offset + position
        for rule_id, blob_length in lengths:
            slots[rule_id] = (blob_offset, blob_length)
            blob_offset += blob_length
        if blob_offset != offset + length:
            raise DataFormatError(
                f"{self.path}: shard {shard_index} blobs do not tile its "
                f"block ({blob_offset - offset} != {length} bytes)"
            )
        self._shard_slots[shard_index] = slots
        return slots

    def _slot_for(self, rule_id: int) -> Optional[_BlobSlot]:
        shard_index = self._shard_index_for(rule_id)
        if shard_index is None:
            return None
        return self._slots(shard_index).get(rule_id)

    # ------------------------------------------------------------------
    # SeriesSource API
    # ------------------------------------------------------------------
    def __contains__(self, rule_id: int) -> bool:
        if not isinstance(rule_id, int) or rule_id < 0:
            return False
        return self._slot_for(rule_id) is not None

    def __len__(self) -> int:
        return self._total_rules

    def rule_ids(self) -> Iterator[int]:
        """All archived rule ids, ascending (decodes every local directory)."""
        for shard_index in range(len(self._shard_dir)):
            yield from sorted(self._slots(shard_index))

    def encoded_series(self, rule_id: int) -> bytes:
        """One rule's series blob, sliced straight out of the map."""
        slot = self._slot_for(rule_id)
        if slot is None:
            raise UnknownRuleError(f"rule {rule_id} has no archived entries")
        offset, length = slot
        return bytes(self._map[offset : offset + length])

    def series_entries(self, rule_id: int) -> List[Entry]:
        """One rule's decoded entries, via the byte-budgeted LRU."""
        cached = self._decoded.get(rule_id)
        if cached is not None:
            return cached
        try:
            entries = decode_series(self.encoded_series(rule_id))
        except CodecError as error:
            raise DataFormatError(
                f"{self.path}: corrupt series for rule {rule_id}: {error}"
            ) from error
        self._decoded.put(rule_id, entries, series_cost(len(entries)))
        return entries

    # ------------------------------------------------------------------
    # window blocks
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Number of window blocks listed in the directory."""
        return len(self._window_dir)

    def window_entries(self, window: int) -> List[WindowEntry]:
        """Decode one window's count table (rule id ascending)."""
        if not 0 <= window < len(self._window_dir):
            raise UnknownWindowError(
                f"window {window} out of range [0, {len(self._window_dir)})"
            )
        offset, length = self._window_dir[window]
        block = self._map[offset : offset + length]
        entries: List[WindowEntry] = []
        try:
            entry_count, position = decode_uvarint(block, 0) if length else (0, 0)
            rule_id = -1
            for _ in range(entry_count):
                gap, position = decode_uvarint(block, position)
                rule_count, position = decode_uvarint(block, position)
                antecedent_margin, position = decode_uvarint(block, position)
                consequent_margin, position = decode_uvarint(block, position)
                if gap == 0:
                    raise DataFormatError(
                        f"{self.path}: window {window} block has a "
                        f"non-increasing rule id"
                    )
                rule_id += gap
                entries.append(
                    (
                        rule_id,
                        rule_count,
                        rule_count + antecedent_margin,
                        rule_count + consequent_margin,
                    )
                )
        except CodecError as error:
            raise DataFormatError(
                f"{self.path}: corrupt window block {window}: {error}"
            ) from error
        if position != length:
            raise DataFormatError(
                f"{self.path}: window block {window} has {length - position} "
                f"trailing byte(s)"
            )
        self._windows_decoded += 1
        return entries

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Laziness evidence: shard/window touch counts + LRU accounting."""
        merged = {
            "shard_count": len(self._shard_dir),
            "shards_decoded": len(self._shard_slots),
            "window_count": len(self._window_dir),
            "windows_decoded": self._windows_decoded,
        }
        merged.update(
            {f"cache_{key}": value for key, value in self._decoded.counters().items()}
        )
        return merged

    def close(self) -> None:
        """Unmap and close the container file (idempotent)."""
        map_object = getattr(self, "_map", None)
        if map_object is not None:
            map_object.close()
            self._map = None  # type: ignore[assignment]
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "ShardedSeriesSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
