"""On-disk layout of the segmented binary KB container (format v2).

A v2 file is a single flat byte stream designed for ``mmap``::

    offset 0   magic          8 bytes   b"TARAKB2\\n"
    offset 8   meta_len       u64 LE
    offset 16  meta           meta_len bytes of UTF-8 JSON
    ...        window dir     u64 W, then W x (u64 offset, u64 length)
    ...        shard dir      u64 S, then S x (u64 first_rule_id,
                                               u64 rule_count,
                                               u64 offset, u64 length)
    ...        window blocks  W delta+varint-coded count tables
    ...        shard blocks   S blocks of raw encoded rule series

All directory offsets are absolute file offsets, so a reader can jump
straight from the directory into the mapped pages without accumulating
positions.  Everything after the two directories is *lazy* territory:
the reader touches a window block only when that window's slice is
first queried, and a shard block only when a rule in its id range is
first decoded.

**Window block** — the per-window counts needed to rebuild that
window's :class:`~repro.core.regions.WindowSlice` without decoding any
per-rule series: ``uvarint entry_count`` then, per entry sorted by rule
id, ``uvarint rule-id gap`` (from previous id, starting at -1),
``uvarint rule_count``, ``uvarint antecedent margin``,
``uvarint consequent margin`` (margins relative to the rule count, both
non-negative by definition).

**Shard block** — shards partition the sorted rule-id space into runs
of at most ``shard_size`` rules.  A block is a shard-local directory
(per rule: ``uvarint rule-id gap`` from the previous id, starting at
``first_rule_id - 1``, then ``uvarint blob length``) followed by the
rules' already delta+varint-encoded series blobs, concatenated in id
order.  No base85, no JSON: the blob bytes are exactly what
:func:`repro.core.storage.codec.encode_series` produced.
"""

from __future__ import annotations

import struct

#: File magic: identifies a TARA knowledge-base container, format 2.
MAGIC = b"TARAKB2\n"

#: Container format number carried redundantly inside the meta JSON.
CONTAINER_FORMAT_VERSION = 2

#: Default number of rules per shard.  512 rules x ~4 windows x ~4 bytes
#: per entry keeps a shard-local directory and its blobs within one or
#: two 4 KiB pages, so a point lookup faults in O(pages-per-shard), not
#: O(file).
DEFAULT_SHARD_SIZE = 512

U64 = struct.Struct("<Q")
#: Window directory entry: (offset, length).
WINDOW_DIR_ENTRY = struct.Struct("<QQ")
#: Shard directory entry: (first_rule_id, rule_count, offset, length).
SHARD_DIR_ENTRY = struct.Struct("<QQQQ")

HEADER_LEN = len(MAGIC) + U64.size
