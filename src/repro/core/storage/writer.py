"""Writer for the segmented binary KB container (format v2).

The writer takes plain data — a JSON-able meta mapping, per-window count
tables, and per-rule encoded series blobs — so the storage layer stays
below :mod:`repro.core` in the import order: core calls down into this
module, never the reverse.

Layout is documented in :mod:`repro.core.storage.format`.  Determinism
matters here: rules are sharded in sorted id order, window blocks are
sorted by rule id, and the meta JSON is dumped with sorted keys, so the
same knowledge base always writes byte-identical containers (the
persistence round-trip tests diff at byte level).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.common.varint import encode_uvarint
from repro.core.storage.format import (
    CONTAINER_FORMAT_VERSION,
    DEFAULT_SHARD_SIZE,
    MAGIC,
    SHARD_DIR_ENTRY,
    U64,
    WINDOW_DIR_ENTRY,
)

#: One window-block entry: (rule_id, rule_count, antecedent_count,
#: consequent_count) — the transposed per-window view of the archive.
WindowEntry = Tuple[int, int, int, int]


def encode_window_block(entries: Sequence[WindowEntry]) -> bytes:
    """Encode one window's count table (sorted by rule id)."""
    out = bytearray()
    encode_uvarint(len(entries), out)
    previous_rule_id = -1
    for rule_id, rule_count, antecedent_count, consequent_count in entries:
        if rule_id <= previous_rule_id:
            raise ValidationError(
                f"window block entries must have strictly increasing rule "
                f"ids, got {rule_id} after {previous_rule_id}"
            )
        if antecedent_count < rule_count or consequent_count < rule_count:
            raise ValidationError(
                f"rule {rule_id}: marginal counts ({antecedent_count}, "
                f"{consequent_count}) below the rule count {rule_count}"
            )
        encode_uvarint(rule_id - previous_rule_id, out)
        encode_uvarint(rule_count, out)
        encode_uvarint(antecedent_count - rule_count, out)
        encode_uvarint(consequent_count - rule_count, out)
        previous_rule_id = rule_id
    return bytes(out)


def encode_shard_block(shard: Sequence[Tuple[int, bytes]]) -> bytes:
    """Encode one shard: local directory, then concatenated series blobs.

    *shard* is the shard's ``(rule_id, encoded_series)`` pairs in
    ascending id order.
    """
    directory = bytearray()
    previous_rule_id = shard[0][0] - 1
    for rule_id, blob in shard:
        if rule_id <= previous_rule_id:
            raise ValidationError(
                f"shard rules must have strictly increasing ids, got "
                f"{rule_id} after {previous_rule_id}"
            )
        encode_uvarint(rule_id - previous_rule_id, directory)
        encode_uvarint(len(blob), directory)
        previous_rule_id = rule_id
    return bytes(directory) + b"".join(blob for _, blob in shard)


def write_container(
    path: Path,
    *,
    meta: Mapping[str, Any],
    window_entries: Sequence[Sequence[WindowEntry]],
    series: Iterable[Tuple[int, bytes]],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Dict[str, int]:
    """Write a complete v2 container to *path*.

    Args:
        meta: JSON-able container metadata; ``format_version`` and
            ``shard_size`` are stamped in by the writer.
        window_entries: per window, that window's
            ``(rule_id, rule_count, antecedent_count, consequent_count)``
            rows sorted by rule id.
        series: every rule's ``(rule_id, encoded_series)``; order is
            irrelevant (the writer sorts), ids must be unique and
            non-negative.
        shard_size: maximum rules per shard.

    Returns a summary dict (shard count, directory/meta/block byte
    sizes) for ``kb-info``-style reporting.
    """
    if shard_size <= 0:
        raise ValidationError(f"shard size must be positive, got {shard_size}")
    by_rule: Dict[int, bytes] = {}
    for rule_id, blob in series:
        if rule_id < 0:
            raise ValidationError(f"rule ids must be >= 0, got {rule_id}")
        if rule_id in by_rule:
            raise ValidationError(f"duplicate series for rule {rule_id}")
        by_rule[rule_id] = blob
    sorted_ids = sorted(by_rule)

    full_meta = dict(meta)
    full_meta["format_version"] = CONTAINER_FORMAT_VERSION
    full_meta["shard_size"] = shard_size
    meta_bytes = json.dumps(
        full_meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    window_blocks = [encode_window_block(entries) for entries in window_entries]
    shards: List[List[Tuple[int, bytes]]] = [
        [(rid, by_rule[rid]) for rid in sorted_ids[start : start + shard_size]]
        for start in range(0, len(sorted_ids), shard_size)
    ]
    shard_blocks = [encode_shard_block(shard) for shard in shards]

    window_count = len(window_blocks)
    shard_count = len(shard_blocks)
    blocks_start = (
        len(MAGIC)
        + U64.size
        + len(meta_bytes)
        + U64.size
        + window_count * WINDOW_DIR_ENTRY.size
        + U64.size
        + shard_count * SHARD_DIR_ENTRY.size
    )

    window_dir = bytearray()
    offset = blocks_start
    for block in window_blocks:
        window_dir += WINDOW_DIR_ENTRY.pack(offset, len(block))
        offset += len(block)
    shard_dir = bytearray()
    for shard, block in zip(shards, shard_blocks):
        shard_dir += SHARD_DIR_ENTRY.pack(
            shard[0][0], len(shard), offset, len(block)
        )
        offset += len(block)

    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(U64.pack(len(meta_bytes)))
        handle.write(meta_bytes)
        handle.write(U64.pack(window_count))
        handle.write(window_dir)
        handle.write(U64.pack(shard_count))
        handle.write(shard_dir)
        for block in window_blocks:
            handle.write(block)
        for block in shard_blocks:
            handle.write(block)

    return {
        "file_bytes": offset,
        "meta_bytes": len(meta_bytes),
        "window_count": window_count,
        "shard_count": shard_count,
        "rule_count": len(sorted_ids),
        "window_block_bytes": sum(len(b) for b in window_blocks),
        "shard_block_bytes": sum(len(b) for b in shard_blocks),
    }
