"""Text rendering of the "rule-centric panorama" (Section 2.1.4).

TARA's pitch is that the EPS index gives analysts "an innovative
rule-centric panorama into the temporal associations".  The original
system rendered it in a Qt GUI; this module provides terminal-friendly
equivalents used by the examples and handy in notebooks:

* :func:`render_slice` — a density heat-grid of one window's parameter
  space: each cell shows how many rules a setting in that cell yields
  (computed exactly via 2-D suffix sums over the parametric locations);
* :func:`render_trajectory` — a sparkline of a rule's confidence or
  support across windows, gaps marked;
* :func:`render_window_sizes` — ruleset-size bars across windows for a
  fixed setting (the "evolving dataset at a glance" strip).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.common.errors import QueryError, ValidationError
from repro.core.archive import WindowMeasure
from repro.core.builder import TaraKnowledgeBase
from repro.core.regions import ParameterSetting, WindowSlice

# Density glyphs from empty to dense.
_SHADES = " .:-=+*#%@"
_SPARKS = "▁▂▃▄▅▆▇█"


def _shade(value: int, maximum: int) -> str:
    if maximum <= 0 or value <= 0:
        return _SHADES[0]
    index = 1 + int((len(_SHADES) - 2) * (value / maximum))
    return _SHADES[min(index, len(_SHADES) - 1)]


def rule_count_grid(
    window_slice: WindowSlice,
    *,
    width: int = 12,
    height: int = 8,
    max_support: Optional[float] = None,
) -> List[List[int]]:
    """Exact ruleset sizes over a width x height grid of settings.

    Cell ``(row, col)`` holds the number of rules valid at the setting
    whose support/confidence are the cell's lower-left corner.  Computed
    with one pass of 2-D suffix sums over the occupied locations, so the
    cost is O(locations + width*height), independent of ruleset sizes.

    ``max_support`` clips the rendered support axis (real datasets have
    heavy-tailed supports that would otherwise waste most columns on a
    near-empty tail); ``None`` spans up to the largest location.
    """
    if width < 1 or height < 1:
        raise ValidationError("grid dimensions must be positive")
    supports = window_slice.supports
    confidences = window_slice.confidences
    if not supports or not confidences:
        return [[0] * width for _ in range(height)]

    # counts[si][ci] = rules at that exact location; suffix-sum it so
    # counts[si][ci] = rules with support rank >= si and conf rank >= ci.
    counts = [[0] * (len(confidences) + 1) for _ in range(len(supports) + 1)]
    for location, rule_ids in window_slice.locations():
        si = supports.index(location.support)
        ci = confidences.index(location.confidence)
        counts[si][ci] += len(rule_ids)
    for si in range(len(supports) - 1, -1, -1):
        for ci in range(len(confidences) - 1, -1, -1):
            counts[si][ci] += counts[si + 1][ci] + counts[si][ci + 1]
            counts[si][ci] -= counts[si + 1][ci + 1]

    gen = window_slice.generation_setting
    supp_hi = float(supports[-1]) if max_support is None else max_support
    supp_lo = gen.min_support
    conf_lo, conf_hi = gen.min_confidence, float(confidences[-1])
    from bisect import bisect_left

    grid: List[List[int]] = []
    for row in range(height):
        # Top row = highest confidence (plot orientation).
        conf = conf_lo + (conf_hi - conf_lo) * (height - 1 - row) / max(height - 1, 1)
        grid_row: List[int] = []
        for col in range(width):
            supp = supp_lo + (supp_hi - supp_lo) * col / max(width - 1, 1)
            si = bisect_left(supports, _approx_fraction(supp))
            ci = bisect_left(confidences, _approx_fraction(conf))
            grid_row.append(counts[si][ci])
        grid.append(grid_row)
    return grid


def _approx_fraction(value: float) -> Fraction:
    return Fraction(value).limit_denominator(10**12)


def render_slice(
    window_slice: WindowSlice,
    *,
    width: int = 12,
    height: int = 8,
    support_quantile: float = 0.9,
) -> str:
    """The heat-grid of one window's parameter space as text art.

    The support axis spans up to the *support_quantile* of the occupied
    locations' supports (1.0 = full range) so the heavy tail of a few
    ultra-frequent rules does not flatten the picture.
    """
    if not 0.0 < support_quantile <= 1.0:
        raise ValidationError("support_quantile must be in (0, 1]")
    supports = window_slice.supports
    confidences = window_slice.confidences
    max_support = None
    if supports and support_quantile < 1.0:
        index = min(
            int(support_quantile * (len(supports) - 1)), len(supports) - 1
        )
        max_support = float(supports[index])
    grid = rule_count_grid(
        window_slice, width=width, height=height, max_support=max_support
    )
    maximum = max((value for row in grid for value in row), default=0)
    gen = window_slice.generation_setting
    lines = [
        f"window {window_slice.window}: ruleset sizes over "
        f"supp x conf (max {maximum} rules, '@' = densest)"
    ]
    for row_index, row in enumerate(grid):
        conf_hi = float(confidences[-1]) if confidences else 1.0
        conf = gen.min_confidence + (conf_hi - gen.min_confidence) * (
            (height - 1 - row_index) / max(height - 1, 1)
        )
        cells = "".join(_shade(value, maximum) for value in row)
        lines.append(f"  conf {conf:6.3f} |{cells}|")
    supp_hi = (
        max_support
        if max_support is not None
        else (float(supports[-1]) if supports else 1.0)
    )
    lines.append(
        f"  supp: {gen.min_support:.4f} .. {supp_hi:.4f} (left to right)"
    )
    return "\n".join(lines)


def render_trajectory(
    measures: Sequence[Optional[WindowMeasure]], *, metric: str = "confidence"
) -> str:
    """A sparkline of one rule's metric across windows ('·' = absent)."""
    if metric not in ("confidence", "support", "lift"):
        raise QueryError(f"unknown trajectory metric {metric!r}")
    values = [
        getattr(measure, metric) if measure is not None else None
        for measure in measures
    ]
    present = [value for value in values if value is not None]
    if not present:
        return "·" * len(values)
    low, high = min(present), max(present)
    span = high - low
    glyphs: List[str] = []
    for value in values:
        if value is None:
            glyphs.append("·")
            continue
        if span == 0:
            glyphs.append(_SPARKS[len(_SPARKS) // 2])
        else:
            index = int((len(_SPARKS) - 1) * (value - low) / span)
            glyphs.append(_SPARKS[index])
    return "".join(glyphs)


def render_window_sizes(
    knowledge_base: TaraKnowledgeBase,
    setting: ParameterSetting,
    *,
    bar_width: int = 40,
) -> str:
    """Per-window ruleset-size bars for one setting."""
    if bar_width < 1:
        raise ValidationError("bar_width must be positive")
    sizes = [
        len(knowledge_base.slice(window).collect(setting))
        for window in range(knowledge_base.window_count)
    ]
    maximum = max(sizes, default=0)
    lines = [
        f"ruleset sizes at (supp>={setting.min_support}, "
        f"conf>={setting.min_confidence}):"
    ]
    for window, size in enumerate(sizes):
        filled = int(bar_width * size / maximum) if maximum else 0
        lines.append(
            f"  window {window}: {'█' * filled}{' ' * (bar_width - filled)} {size}"
        )
    return "\n".join(lines)
