"""Temporal parametric locations in the Evolving Parameter Space.

Definition 9 of the paper associates every rule, per time window, with
its *temporal parametric location* — the point in the (support,
confidence) plane given by the rule's measured values in that window.
Rules with identical parameter values share one location (Lemma 2
guarantees rules at distinct locations are distinct).

Equality of parameter values must be *exact* for the space partitioning
to be sound, so locations are keyed by rational values
(``fractions.Fraction`` of the underlying integer counts), never by
floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ValidationError
from repro.mining.rules import RuleId, ScoredRule


@dataclass(frozen=True, order=True)
class Location:
    """One parametric location: exact (support, confidence) coordinates."""

    support: Fraction
    confidence: Fraction

    def __post_init__(self) -> None:
        for name, value in (("support", self.support), ("confidence", self.confidence)):
            if not 0 <= value <= 1:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")

    @property
    def support_float(self) -> float:
        """Support as a float (display/benchmark convenience)."""
        return float(self.support)

    @property
    def confidence_float(self) -> float:
        """Confidence as a float (display/benchmark convenience)."""
        return float(self.confidence)

    def dominates(self, other: "Location") -> bool:
        """Definition 13's order: both coordinates less than or equal.

        The *dominating* location imposes the weaker thresholds, hence
        admits a superset of the rules (Lemma 4).
        """
        return self.support <= other.support and self.confidence <= other.confidence


def location_of(scored: ScoredRule) -> Location:
    """The exact parametric location of one scored rule."""
    if scored.window_size == 0:
        raise ValidationError("cannot locate a rule mined from an empty window")
    return Location(
        support=Fraction(scored.rule_count, scored.window_size),
        confidence=Fraction(scored.rule_count, scored.antecedent_count),
    )


def group_by_location(
    scored_rules: Iterable[ScoredRule],
) -> Dict[Location, List[RuleId]]:
    """Map each distinct location to the ids of the rules sitting on it.

    This is the Lemma 2 grouping: within one window a rule has exactly
    one location, and all rules on a location share exact parameter
    values.
    """
    groups: Dict[Location, List[RuleId]] = {}
    for scored in scored_rules:
        groups.setdefault(location_of(scored), []).append(scored.rule_id)
    for rule_ids in groups.values():
        rule_ids.sort()
    return groups


def distinct_axes(
    locations: Iterable[Location],
) -> Tuple[List[Fraction], List[Fraction]]:
    """Sorted distinct support and confidence values of the locations.

    These are the coordinates of the *cut locations* (Definition 12):
    the grid formed by projecting every location onto both axes.
    """
    supports = sorted({location.support for location in locations})
    confidences = sorted({location.confidence for location in locations})
    return supports, confidences
