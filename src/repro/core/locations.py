"""Temporal parametric locations in the Evolving Parameter Space.

Definition 9 of the paper associates every rule, per time window, with
its *temporal parametric location* — the point in the (support,
confidence) plane given by the rule's measured values in that window.
Rules with identical parameter values share one location (Lemma 2
guarantees rules at distinct locations are distinct).

Equality of parameter values must be *exact* for the space partitioning
to be sound, so locations are keyed by rational values
(``fractions.Fraction`` of the underlying integer counts), never by
floats.

The offline build uses the *count-native* grouping
(:func:`group_by_counts` + :func:`count_axes`): within one window the
window size ``n`` is fixed, so a rule's location is fully determined by
the integer pair ``(rule_count, antecedent_count)`` — support is
``rule_count / n`` and confidence is ``rule_count / antecedent_count``.
Grouping by the gcd-normalized integer key gives the same exact rational
identity as :func:`group_by_location` without constructing two
``Fraction`` objects and a validated :class:`Location` per scored rule;
``Fraction`` values (and their validation) are built only for the few
distinct cut-grid coordinates.  The ``Fraction``-keyed functions remain
the reference implementation (property-tested equivalent) and serve
non-hot callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from math import gcd
from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ValidationError
from repro.mining.rules import RuleId, ScoredRule

#: Count-native location key: ``(rule_count, p, q)`` where ``p/q`` is
#: the gcd-normalized confidence ``rule_count / antecedent_count``.
#: With the window size fixed, support identity is rule-count identity
#: and confidence identity is normalized-pair identity, so the key is
#: exactly Definition 9's rational location identity.  (Keying on the
#: normalized pair rather than the raw antecedent count matters for
#: zero-count rules: ``0/3`` and ``0/7`` are the same confidence.)
CountLocation = Tuple[int, int, int]


@dataclass(frozen=True, order=True)
class Location:
    """One parametric location: exact (support, confidence) coordinates."""

    support: Fraction
    confidence: Fraction

    def __post_init__(self) -> None:
        for name, value in (("support", self.support), ("confidence", self.confidence)):
            if not 0 <= value <= 1:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")

    @property
    def support_float(self) -> float:
        """Support as a float (display/benchmark convenience)."""
        return float(self.support)

    @property
    def confidence_float(self) -> float:
        """Confidence as a float (display/benchmark convenience)."""
        return float(self.confidence)

    def dominates(self, other: "Location") -> bool:
        """Definition 13's order: both coordinates less than or equal.

        The *dominating* location imposes the weaker thresholds, hence
        admits a superset of the rules (Lemma 4).
        """
        return self.support <= other.support and self.confidence <= other.confidence


def location_of(scored: ScoredRule) -> Location:
    """The exact parametric location of one scored rule."""
    if scored.window_size == 0:
        raise ValidationError("cannot locate a rule mined from an empty window")
    return Location(
        support=Fraction(scored.rule_count, scored.window_size),
        confidence=Fraction(scored.rule_count, scored.antecedent_count),
    )


def group_by_location(
    scored_rules: Iterable[ScoredRule],
) -> Dict[Location, List[RuleId]]:
    """Map each distinct location to the ids of the rules sitting on it.

    This is the Lemma 2 grouping: within one window a rule has exactly
    one location, and all rules on a location share exact parameter
    values.
    """
    groups: Dict[Location, List[RuleId]] = {}
    for scored in scored_rules:
        groups.setdefault(location_of(scored), []).append(scored.rule_id)
    for rule_ids in groups.values():
        rule_ids.sort()
    return groups


def distinct_axes(
    locations: Iterable[Location],
) -> Tuple[List[Fraction], List[Fraction]]:
    """Sorted distinct support and confidence values of the locations.

    These are the coordinates of the *cut locations* (Definition 12):
    the grid formed by projecting every location onto both axes.
    """
    supports = sorted({location.support for location in locations})
    confidences = sorted({location.confidence for location in locations})
    return supports, confidences


@lru_cache(maxsize=1 << 16)
def _normalized_confidence(rule_count: int, antecedent_count: int) -> Tuple[int, int]:
    """Gcd-normalize ``rule_count / antecedent_count`` to coprime ``(p, q)``.

    Cached on the *raw* pair so the per-rule cost of the count-native
    grouping is a single cache hit; the gcd runs once per distinct pair
    per process (the cache is bounded, shared across windows and
    builds — normalization is a pure function of the pair).
    """
    divisor = gcd(rule_count, antecedent_count)
    return rule_count // divisor, antecedent_count // divisor


def group_by_counts(
    scored_rules: Iterable[ScoredRule],
) -> Dict[CountLocation, List[RuleId]]:
    """Count-native Lemma 2 grouping: location key -> sorted rule ids.

    Exactly :func:`group_by_location` under the key bijection described
    at :data:`CountLocation` (property-tested), but allocation-free per
    rule: one cache hit for the normalized confidence pair and one dict
    access, no ``Fraction`` or :class:`Location` construction.
    """
    groups: Dict[CountLocation, List[RuleId]] = {}
    groups_get = groups.get
    normalized = _normalized_confidence
    # ScoredRule is a NamedTuple; positional unpacking replaces four
    # attribute lookups per rule in this per-scored-rule loop.
    for rule_id, _, _, _, rule_count, antecedent_count, window_size, _ in scored_rules:
        if window_size == 0:
            raise ValidationError("cannot locate a rule mined from an empty window")
        key = (rule_count, *normalized(rule_count, antecedent_count))
        bucket = groups_get(key)
        if bucket is None:
            groups[key] = [rule_id]
        else:
            bucket.append(rule_id)
    for rule_ids in groups.values():
        rule_ids.sort()
    return groups


@lru_cache(maxsize=1 << 16)
def _cached_fraction(numerator: int, denominator: int) -> Fraction:
    """Memoized ``Fraction`` construction for axis values.

    Consecutive windows share most of their distinct counts and
    confidence pairs, so the cache turns repeated gcd-normalizing
    constructions into dict hits across a build (and across builds).
    """
    return Fraction(numerator, denominator)


def _pair_float(pair: Tuple[int, int]) -> float:
    """Float sort key of a normalized confidence pair."""
    return pair[0] / pair[1]


def count_axes(
    window_size: int, groups: Iterable[CountLocation]
) -> Tuple[List[Fraction], List[Fraction], Dict[int, int], Dict[Tuple[int, int], int]]:
    """Distinct cut-grid axes of count-native location keys, with ranks.

    This is the distinct-value boundary where the exact ``Fraction``
    representation (and its ``[0, 1]`` validation) is materialized:
    thousands of scored rules collapse to hundreds of axis values, so
    the per-build ``Fraction`` cost becomes negligible.  Validation runs
    on the raw integers (``0 <= rule_count <= n``, ``0 <= p <= q``) and
    the confidence ordering is float-keyed with an exact integer
    cross-multiplication verification pass — the sort falls back to
    exact ``Fraction`` comparisons only if two distinct rationals
    collide in float space.

    Returns ``(supports, confidences, support_rank, confidence_rank)``:
    the sorted exact axes plus the rank of each distinct rule count /
    normalized confidence pair on them — everything
    :meth:`repro.core.regions.WindowSlice.from_count_groups` needs to
    place rows without touching ``Fraction`` again.
    """
    rule_counts = sorted({key[0] for key in groups})
    confidence_pairs = {(key[1], key[2]) for key in groups}
    for rule_count in rule_counts:
        if not 0 <= rule_count <= window_size:
            raise ValidationError(
                f"support must be in [0, 1], got {rule_count}/{window_size}"
            )
    for p, q in confidence_pairs:
        if q < 1 or not 0 <= p <= q:
            raise ValidationError(f"confidence must be in [0, 1], got {p}/{q}")
    sorted_pairs = sorted(confidence_pairs, key=_pair_float)
    for (p1, q1), (p2, q2) in zip(sorted_pairs, sorted_pairs[1:]):
        if p1 * q2 > p2 * q1:
            # Two distinct rationals tied in float space and came out in
            # the wrong exact order; redo the sort exactly.
            sorted_pairs.sort(key=lambda pair: Fraction(pair[0], pair[1]))
            break
    supports = [_cached_fraction(rule_count, window_size) for rule_count in rule_counts]
    confidences = [_cached_fraction(p, q) for p, q in sorted_pairs]
    support_rank = {rule_count: i for i, rule_count in enumerate(rule_counts)}
    confidence_rank = {pair: i for i, pair in enumerate(sorted_pairs)}
    return supports, confidences, support_rank, confidence_rank
