"""Incremental knowledge-base maintenance as a snapshot publisher.

The companion iPARAS work (Qin et al., BigMine'14) — cited by the paper
as TARA's speedup for fast-arriving data — constructs the parameter
space *incrementally*: when a new batch arrives, only the new window is
mined and indexed; all previously built per-window structures (archive
series, EPS slices) are reused untouched, because the EPS is sliced by
time and the archive is append-only.

PR 8 turns that append operation into MVCC publication.
:class:`IncrementalTara` no longer mutates a knowledge base readers are
concurrently querying; instead it owns a *current*
:class:`~repro.core.snapshot.Snapshot` and builds each new window
against a private copy-on-write successor:

1. :meth:`publish` admits one writer at a time (a second concurrent
   call raises :class:`~repro.common.errors.BuildInFlightError`, which
   the serving tier maps to HTTP 409);
2. the predecessor's knowledge base is cloned (cheap: outer containers
   only — windows, archive series, and interned rules are append-once
   and shared), and the new batches are mined into the clone via
   :meth:`TaraBuilder.add_windows` (vertical kernel, under
   :func:`~repro.common.gcscope.paused_gc`);
3. a new snapshot wraps the successor and is *atomically swapped in*
   under the publisher lock; readers that pinned the predecessor keep
   answering against it, and it retires — cache segment and explorer
   freed — when its last reader drains.

Readers obtain a pinned view with :meth:`snapshot`, which returns a
context-managed :class:`~repro.core.snapshot.SnapshotHandle`.

The pre-PR-8 mutation surface (``append_batch`` / ``append_batches`` /
``subscribe``) survives as thin shims that emit one
:class:`DeprecationWarning` per process and delegate to
:meth:`publish`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Sequence

from repro.common.deprecation import warn_deprecated
from repro.common.errors import BuildInFlightError, ValidationError
from repro.core.archive import TarArchive
from repro.core.builder import GenerationConfig, TaraBuilder, TaraKnowledgeBase
from repro.core.explorer import TaraExplorer
from repro.core.regions import WindowSlice
from repro.core.snapshot import DEFAULT_SEGMENT_CAPACITY, Snapshot, SnapshotHandle
from repro.data.transactions import Transaction
from repro.mining.rules import RuleCatalog


class IncrementalTara:
    """A TARA snapshot publisher that grows the database window-wise."""

    def __init__(
        self,
        config: GenerationConfig,
        *,
        segment_capacity: int = DEFAULT_SEGMENT_CAPACITY,
    ) -> None:
        self.config = config
        self._builder = TaraBuilder(config)
        self._segment_capacity = segment_capacity
        self._lock = threading.Lock()
        self._listeners: List[Callable[[int], None]] = []  # repro-lint: guarded-by=_lock
        self._building = False  # repro-lint: guarded-by=_lock
        self._retired_entries = 0  # repro-lint: guarded-by=_lock
        self._retired_snapshots = 0  # repro-lint: guarded-by=_lock
        initial = Snapshot(
            0,
            TaraKnowledgeBase(
                config=config,
                catalog=RuleCatalog(),
                archive=TarArchive(),
            ),
            segment_capacity=segment_capacity,
            on_retire=self._record_retirement,
        )
        # The publisher holds one standing pin on the current snapshot,
        # so "current" can never retire out from under a new reader.
        initial.pin()
        self._current = initial  # repro-lint: guarded-by=_lock

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> SnapshotHandle:
        """Pin the current snapshot and return a context-managed handle.

        Pinning happens under the publisher lock, so the returned view
        cannot retire between the read of ``current`` and the pin.
        """
        with self._lock:
            pinned = self._current.pin()
        return SnapshotHandle(pinned)

    @property
    def current(self) -> Snapshot:
        """The currently published snapshot (unpinned; prefer
        :meth:`snapshot` for anything longer than a single read)."""
        with self._lock:
            return self._current

    @property
    def knowledge_base(self) -> TaraKnowledgeBase:
        """The current snapshot's knowledge base."""
        with self._lock:
            return self._current.knowledge_base

    @property
    def window_count(self) -> int:
        """Windows incorporated so far (in the current snapshot)."""
        with self._lock:
            return self._current.window_count

    def explorer(self) -> TaraExplorer:
        """A query processor over the current snapshot.

        Convenience for single-threaded callers; concurrent readers
        should hold a :meth:`snapshot` handle so the view they query
        cannot retire mid-flight.
        """
        with self._lock:
            current = self._current
        return current.explorer()

    def snapshot_stats(self) -> Dict[str, object]:
        """Publisher introspection for ``GET /v1/snapshot``."""
        with self._lock:
            current = self._current
            building = self._building
            retired_snapshots = self._retired_snapshots
            retired_entries = self._retired_entries
        return {
            "epoch": current.epoch,
            "windows": current.window_count,
            "refs": current.refs,
            "building": building,
            "retired_snapshots": retired_snapshots,
            "retired_entries": retired_entries,
        }

    def retired_entries(self) -> int:
        """Cache-segment entries dropped by snapshot retirement so far.

        :class:`repro.service.TaraService` polls this to account
        retirements as invalidations in its metrics.
        """
        with self._lock:
            return self._retired_entries

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, batches: Iterable[Sequence[Transaction]]) -> Snapshot:
        """Mine *batches* into a successor snapshot and install it.

        One writer at a time: a concurrent call observes the in-flight
        build and raises :class:`BuildInFlightError` immediately rather
        than queueing (the serving tier surfaces this as HTTP 409 so the
        ingest client can retry after the current build lands).

        Readers are never blocked: they keep executing against the
        predecessor until the atomic swap, and pinned handles remain
        valid until released.  Returns the newly installed snapshot.
        """
        with self._lock:
            if self._building:
                raise BuildInFlightError(
                    "a snapshot build is already in flight; retry after it lands"
                )
            self._building = True
            predecessor = self._current
        try:
            validated = self._validate_batches(
                batches, window_count=predecessor.window_count
            )
            if not validated:
                raise ValidationError("publish requires at least one batch")
            successor_kb = predecessor.knowledge_base.clone()
            self._builder.add_windows(successor_kb, validated)
            successor = Snapshot(
                successor_kb.window_count,
                successor_kb,
                segment_capacity=self._segment_capacity,
                on_retire=self._record_retirement,
            )
            # Standing pin first, then swap: between these two lines the
            # successor is simply not yet visible to anyone.
            successor.pin()
            with self._lock:
                self._current = successor
        finally:
            with self._lock:
                self._building = False
        # Drop the publisher's standing pin on the predecessor outside
        # every lock: if no reader still holds it, retirement (and its
        # callback into our own lock) runs right here.
        predecessor.release()
        self._notify_appended(successor.window_count)
        return successor

    def _validate_batches(
        self,
        batches: Iterable[Sequence[Transaction]],
        *,
        window_count: int,
    ) -> List[List[Transaction]]:
        validated: List[List[Transaction]] = []
        for index, transactions in enumerate(batches):
            batch = list(transactions)
            if not batch:
                raise ValidationError("cannot append an empty batch")
            self._check_order(
                batch,
                is_first_window=(window_count == 0 and index == 0),
            )
            validated.append(batch)
        return validated

    def _record_retirement(self, dropped_entries: int) -> None:
        # Fired by Snapshot.release *after* it dropped Snapshot._lock,
        # so taking our lock here never nests inside the snapshot's.
        with self._lock:
            self._retired_snapshots += 1
            self._retired_entries += dropped_entries

    def _notify_appended(self, window_count: int) -> None:
        # Snapshot under the lock, call outside it: a legacy listener
        # may acquire its own lock, and holding ours across that call
        # would nest the two.  The global acquisition order, for any
        # path that must nest, is:
        # repro-lint: lock-order=IncrementalTara._lock,TaraService._lock,Snapshot._lock
        with self._lock:
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(window_count)

    # ------------------------------------------------------------------
    # deprecated pre-PR-8 mutation surface
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Deprecated: register *listener* for post-publish callbacks.

        .. deprecated:: PR 8
           The serving layer no longer advances an epoch counter on
           append; readers pin immutable snapshots instead.  Poll
           :meth:`snapshot_stats` or compare :attr:`Snapshot.epoch`
           identities if you need to observe publication.
        """
        warn_deprecated(
            "incremental.subscribe",
            "IncrementalTara.subscribe() is deprecated: the serving tier pins "
            "immutable snapshots (IncrementalTara.snapshot()) instead of "
            "reacting to append notifications",
        )
        with self._lock:
            self._listeners.append(listener)

    def append_batch(self, transactions: Sequence[Transaction]) -> WindowSlice:
        """Deprecated: incorporate one batch as a new basic window.

        .. deprecated:: PR 8
           Use :meth:`publish`, which returns the installed
           :class:`Snapshot`; the new window's slice is
           ``snapshot.knowledge_base.slices[-1]``.
        """
        warn_deprecated(
            "incremental.append_batch",
            "IncrementalTara.append_batch() is deprecated: use "
            "publish([batch]), which returns the installed Snapshot",
        )
        snapshot = self.publish([transactions])
        return snapshot.knowledge_base.slices[-1]

    def append_batches(
        self, batches: Iterable[Sequence[Transaction]]
    ) -> List[WindowSlice]:
        """Deprecated: append several batches in order.

        .. deprecated:: PR 8
           Use :meth:`publish`, which installs all batches as one new
           snapshot (the per-batch mining still runs through
           :meth:`TaraBuilder.add_windows`, so a parallel
           :attr:`GenerationConfig.executor` is honoured).
        """
        warn_deprecated(
            "incremental.append_batches",
            "IncrementalTara.append_batches() is deprecated: use "
            "publish(batches), which returns the installed Snapshot",
        )
        staged = [list(batch) for batch in batches]
        if not staged:
            return []
        before = self.window_count
        snapshot = self.publish(staged)
        return list(snapshot.knowledge_base.slices[before:])

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_order(
        self, batch: Sequence[Transaction], *, is_first_window: bool
    ) -> None:
        if is_first_window:
            return
        # Batches carry their own timestamps; we only require that the
        # batch is internally sorted (the windowed model does not demand
        # global monotonicity for count-partitioned sources, but an
        # unsorted batch indicates caller confusion).
        times = [t.time for t in batch]
        if times != sorted(times):
            raise ValidationError("batch transactions must be time-sorted")
