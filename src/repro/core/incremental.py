"""Incremental knowledge-base maintenance (the iPARAS strategy).

The companion iPARAS work (Qin et al., BigMine'14) — cited by the paper
as TARA's speedup for fast-arriving data — constructs the parameter
space *incrementally*: when a new batch arrives, only the new window is
mined and indexed; all previously built per-window structures (archive
series, EPS slices) are reused untouched, because the EPS is sliced by
time and the archive is append-only.

:class:`IncrementalTara` wraps a knowledge base with an ``append_batch``
operation and keeps an explorer view that is always current.  The
ablation benchmark contrasts this against rebuilding from scratch on
every batch (the behaviour the paper ascribes to PARAS).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Sequence

from repro.common.errors import ValidationError
from repro.core.archive import TarArchive
from repro.core.builder import GenerationConfig, TaraBuilder, TaraKnowledgeBase
from repro.core.explorer import TaraExplorer
from repro.core.regions import WindowSlice
from repro.data.transactions import Transaction
from repro.mining.rules import RuleCatalog


class IncrementalTara:
    """A TARA knowledge base that grows one window at a time."""

    def __init__(self, config: GenerationConfig) -> None:
        self.config = config
        self._builder = TaraBuilder(config)
        self.knowledge_base = TaraKnowledgeBase(
            config=config,
            catalog=RuleCatalog(),
            archive=TarArchive(),
        )
        self._lock = threading.Lock()
        self._listeners: List[Callable[[int], None]] = []  # repro-lint: guarded-by=_lock

    @property
    def window_count(self) -> int:
        """Windows incorporated so far."""
        return self.knowledge_base.window_count

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register *listener* to be called after every append.

        The callback receives the new window count.  The online serving
        layer (:class:`repro.service.TaraService`) uses this to advance
        its cache epoch — invalidating generation-scoped entries without
        flushing still-valid per-window ones.
        """
        with self._lock:
            self._listeners.append(listener)

    def _notify_appended(self) -> None:
        # Snapshot under the lock, call outside it: a listener such as
        # TaraService._on_append acquires its own lock, and holding ours
        # across that call would nest the two.  The global acquisition
        # order, for any path that must nest them, is:
        # repro-lint: lock-order=IncrementalTara._lock,TaraService._lock
        with self._lock:
            listeners = tuple(self._listeners)
        count = self.knowledge_base.window_count
        for listener in listeners:
            listener(count)

    def append_batch(self, transactions: Sequence[Transaction]) -> WindowSlice:
        """Incorporate the next batch as a new basic window.

        Cost is that of mining and indexing *this batch only* — the
        incremental claim.  Batches must be non-empty and in time order
        relative to previous batches.
        """
        batch = list(transactions)
        if not batch:
            raise ValidationError("cannot append an empty batch")
        self._check_order(
            batch, is_first_window=self.knowledge_base.window_count == 0
        )
        window_slice = self._builder.add_window(self.knowledge_base, batch)
        self._notify_appended()
        return window_slice

    def append_batches(
        self, batches: Iterable[Sequence[Transaction]]
    ) -> List[WindowSlice]:
        """Append several batches in order; returns their new slices.

        Validation (non-empty, time-sorted) happens up front for every
        batch; the incorporation itself goes through
        :meth:`TaraBuilder.add_windows`, so a parallel
        :attr:`GenerationConfig.executor` mines the batches concurrently
        while the merge keeps the resulting knowledge base identical to
        appending them one by one.
        """
        validated: List[List[Transaction]] = []
        for index, transactions in enumerate(batches):
            batch = list(transactions)
            if not batch:
                raise ValidationError("cannot append an empty batch")
            self._check_order(
                batch,
                is_first_window=(
                    self.knowledge_base.window_count == 0 and index == 0
                ),
            )
            validated.append(batch)
        slices = self._builder.add_windows(self.knowledge_base, validated)
        if slices:
            self._notify_appended()
        return slices

    def explorer(self) -> TaraExplorer:
        """A query processor over the current state."""
        return TaraExplorer(self.knowledge_base)

    def _check_order(
        self, batch: Sequence[Transaction], *, is_first_window: bool
    ) -> None:
        if is_first_window:
            return
        # Batches carry their own timestamps; we only require that the
        # batch is internally sorted (the windowed model does not demand
        # global monotonicity for count-partitioned sources, but an
        # unsorted batch indicates caller confusion).
        times = [t.time for t in batch]
        if times != sorted(times):
            raise ValidationError("batch transactions must be time-sorted")
