"""Offline phase: the Association Generator and Knowledge Base Constructor.

Figure 2 of the paper splits TARA into an offline preprocessing phase
and an online explorer.  This module is the offline phase: for every
basic window it

1. mines the frequent itemsets at the *generation* support threshold
   (Table 4's per-dataset thresholds),
2. derives the rules at the generation confidence threshold,
3. archives each rule's counts into the :class:`~repro.core.archive.TarArchive`,
4. inserts the rules' parametric locations into that window's
   :class:`~repro.core.regions.WindowSlice` of the EPS index,

timing each task separately so the Figure 9 preprocessing breakdown can
be reported per task.

Steps 1–2 are independent per window, so when
:attr:`GenerationConfig.executor` selects a parallel strategy the
builder ships them to workers as picklable :class:`WindowTask` units and
*merges* the mined results back **in window order**: rules are interned
into the shared catalog in each worker's discovery order, which assigns
the exact ids the serial build would have assigned, so the parallel
output is bit-identical to the serial one (sealed archive bytes and
region decompositions included — property-tested).  Steps 3–4 stay in
the merge because the archive append and the slice list are ordered,
cheap, and not worth shipping.  docs/performance.md derives the full
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import NotBuiltError, UnknownWindowError, ValidationError
from repro.common.executors import ExecutorConfig, run_ordered
from repro.common.gcscope import paused_gc
from repro.common.timing import PhaseTimer, stopwatch
from repro.core.archive import TarArchive
from repro.core.locations import group_by_counts
from repro.core.regions import ParameterSetting, WindowSlice
from repro.data.items import ItemId
from repro.data.periods import PeriodSpec
from repro.data.transactions import Transaction
from repro.data.windows import WindowedDatabase
from repro.mining import MINERS
from repro.mining.itemsets import min_count_for
from repro.mining.rules import RuleCatalog, RuleId, ScoredRule, derive_rules

# Task names used in the Figure 9 breakdown.
PHASE_ITEMSETS = "frequent itemset generation"
PHASE_RULES = "rule derivation"
PHASE_ARCHIVE = "archival"
PHASE_EPS = "EPS index update"
# Parallel-build attribution phases (docs/performance.md).  PHASE_MERGE
# is counted work the parallel path adds (rule re-interning);
# PHASE_WORKERS is informational pool wall-clock that *overlaps* the
# per-task itemset/rule durations measured inside the workers.
PHASE_MERGE = "parallel result merge"
PHASE_WORKERS = "worker pool wall-clock"


@dataclass(frozen=True)
class GenerationConfig:
    """Offline generation thresholds and build options.

    Attributes:
        min_support: generation support threshold (Table 4 column).
        min_confidence: generation confidence threshold.
        miner: itemset miner name — one of :data:`repro.mining.MINERS`.
            Defaults to the vertical bitmap kernel
            (:func:`repro.mining.vertical.mine_vertical`), the fastest
            miner; every miner produces a byte-identical knowledge base
            (rule ids, archive bytes, EPS regions — fingerprint-gated
            by ``repro bench``), so the knob is purely about speed.
        build_item_index: build the TARA-S per-location item index
            (enables content queries, costs extra build time and space).
        max_itemset_size: optional cap on mined itemset cardinality.
        executor: how multi-window builds execute per-window mining
            (serial by default; see :mod:`repro.common.executors`).
            A build-time knob only — it never changes the produced
            knowledge base and is not persisted with it.
    """

    min_support: float
    min_confidence: float
    miner: str = "vertical"
    build_item_index: bool = False
    max_itemset_size: Optional[int] = None
    executor: ExecutorConfig = ExecutorConfig()

    def __post_init__(self) -> None:
        if self.miner not in MINERS:
            raise ValidationError(
                f"unknown miner {self.miner!r}; known: {sorted(MINERS)}"
            )
        # Delegate range validation to ParameterSetting's rules.
        ParameterSetting(self.min_support, self.min_confidence)

    @property
    def setting(self) -> ParameterSetting:
        """The generation thresholds as a :class:`ParameterSetting`."""
        return ParameterSetting(self.min_support, self.min_confidence)


# Mutable by design: the incremental builder appends window slices and
# archive entries in place; the knowledge base is an aggregate root, not
# a value used as a key.
@dataclass  # repro-lint: disable=R004
class TaraKnowledgeBase:
    """Everything the online explorer needs, produced by the offline phase."""

    config: GenerationConfig
    catalog: RuleCatalog
    archive: TarArchive
    slices: List[WindowSlice] = field(default_factory=list)
    rules_in_window: List[List[RuleId]] = field(default_factory=list)
    window_sizes: List[int] = field(default_factory=list)
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def window_count(self) -> int:
        """Number of windows incorporated so far."""
        return len(self.slices)

    def slice(self, window: int) -> WindowSlice:
        """The EPS slice of one basic window."""
        if not 0 <= window < len(self.slices):
            raise UnknownWindowError(
                f"window {window} out of range [0, {len(self.slices)})"
            )
        return self.slices[window]

    def all_windows(self) -> PeriodSpec:
        """Spec naming every incorporated window."""
        if not self.slices:
            raise NotBuiltError("knowledge base has no windows yet")
        return PeriodSpec(range(len(self.slices)))

    def candidate_rules(self, spec: PeriodSpec) -> List[RuleId]:
        """Union of rules archived in any window of *spec* (sorted ids)."""
        seen: set[RuleId] = set()
        for window in spec:
            if not 0 <= window < len(self.rules_in_window):
                raise UnknownWindowError(
                    f"window {window} out of range [0, {len(self.rules_in_window)})"
                )
            seen.update(self.rules_in_window[window])
        return sorted(seen)

    def clone(self) -> "TaraKnowledgeBase":
        """A private successor for copy-on-write snapshot publication.

        Appending windows to the clone never disturbs readers of this
        knowledge base: the catalog and archive are cloned (see their
        ``clone`` docstrings for what is copied vs. shared), and the
        window-indexed lists are copied at the outer level only — the
        :class:`WindowSlice` objects and per-window id lists inside are
        append-once and never mutated after construction, so sharing
        them is what makes publication cost proportional to the archive
        rather than to the raw data.  The phase timer is shared: it is
        build-time accounting written only by the single publisher
        thread, not query state.
        """
        return TaraKnowledgeBase(
            config=self.config,
            catalog=self.catalog.clone(),
            archive=self.archive.clone(),
            slices=list(self.slices),
            rules_in_window=list(self.rules_in_window),
            window_sizes=list(self.window_sizes),
            timer=self.timer,
        )


@dataclass(frozen=True)
class WindowTask:
    """A picklable per-window work unit for the parallel offline build.

    Carries everything a worker needs to mine one window in isolation;
    deliberately excludes the shared catalog/archive so workers stay
    independent and cheap to ship to a process pool.
    """

    transactions: Tuple[Transaction, ...]
    miner: str
    min_support: float
    min_confidence: float
    max_itemset_size: Optional[int]


@dataclass(frozen=True)
class MinedWindow:
    """One worker's result: a window mined against a *local* catalog.

    ``scored`` is ordered by local catalog id, which — because the
    worker starts from an empty catalog and a rule is derived at most
    once per window — equals the derivation discovery order.  The merge
    re-interns the rules into the shared catalog in exactly that order,
    reproducing the ids a serial build would have assigned.
    """

    window_size: int
    scored: Tuple[ScoredRule, ...]
    itemset_seconds: float
    rule_seconds: float


def mine_window_task(task: WindowTask) -> MinedWindow:
    """Execute one :class:`WindowTask` (module-level: process-picklable)."""
    with stopwatch() as mine_clock:
        itemsets = MINERS[task.miner](
            list(task.transactions),
            task.min_support,
            max_size=task.max_itemset_size,
        )
    with stopwatch() as rule_clock:
        scored = derive_rules(itemsets, task.min_confidence)
    return MinedWindow(
        window_size=len(task.transactions),
        scored=tuple(scored),
        itemset_seconds=mine_clock.seconds,
        rule_seconds=rule_clock.seconds,
    )


class TaraBuilder:
    """Builds a :class:`TaraKnowledgeBase` window by window."""

    def __init__(self, config: GenerationConfig) -> None:
        self.config = config
        self._miner = MINERS[config.miner]

    def build(self, windows: WindowedDatabase) -> TaraKnowledgeBase:
        """Run the full offline phase over every window of *windows*."""
        knowledge_base = TaraKnowledgeBase(
            config=self.config,
            catalog=RuleCatalog(),
            archive=TarArchive(),
        )
        self.add_windows(
            knowledge_base,
            [windows.window(index) for index in range(windows.window_count)],
        )
        knowledge_base.archive.seal()
        return knowledge_base

    def add_windows(
        self,
        knowledge_base: TaraKnowledgeBase,
        batches: Sequence[Sequence[Transaction]],
    ) -> List[WindowSlice]:
        """Incorporate several new windows, one slice per batch, in order.

        Under the serial strategy this is exactly a loop over
        :meth:`add_window`.  Under a parallel strategy the per-window
        mining runs in a worker pool and the results are merged back in
        window order; the produced knowledge base is identical either
        way (see the module docstring).

        The whole incorporation runs under :func:`paused_gc`: everything
        the build allocates is retained in the knowledge base, so
        young-generation scans during the bulk phase are pure overhead.
        """
        with paused_gc():
            if not self.config.executor.is_parallel or len(batches) == 0:
                return [self.add_window(knowledge_base, batch) for batch in batches]
            tasks = [
                WindowTask(
                    transactions=tuple(batch),
                    miner=self.config.miner,
                    min_support=self.config.min_support,
                    min_confidence=self.config.min_confidence,
                    max_itemset_size=self.config.max_itemset_size,
                )
                for batch in batches
            ]
            with stopwatch() as pool_clock:
                mined = run_ordered(mine_window_task, tasks, self.config.executor)
            knowledge_base.timer.add(
                PHASE_WORKERS, pool_clock.seconds, informational=True
            )
            return [
                self.merge_mined_window(knowledge_base, result) for result in mined
            ]

    def add_window(
        self,
        knowledge_base: TaraKnowledgeBase,
        transactions: Sequence[Transaction],
    ) -> WindowSlice:
        """Incorporate one new window (the incremental entry point).

        Mines, derives, archives and indexes the batch; returns the new
        EPS slice.  Used both by :meth:`build` and by the incremental
        builder when a fresh batch arrives.  Runs under
        :func:`paused_gc` (see :meth:`add_windows`).
        """
        config = self.config
        timer = knowledge_base.timer

        with paused_gc():
            with timer.phase(PHASE_ITEMSETS):
                itemsets = self._miner(
                    transactions,
                    config.min_support,
                    max_size=config.max_itemset_size,
                )

            with timer.phase(PHASE_RULES):
                scored = derive_rules(
                    itemsets,
                    config.min_confidence,
                    catalog=knowledge_base.catalog,
                )

            return self._index_window(knowledge_base, len(transactions), scored)

    def merge_mined_window(
        self,
        knowledge_base: TaraKnowledgeBase,
        mined: MinedWindow,
    ) -> WindowSlice:
        """Fold one worker result into the knowledge base, serial-equivalently.

        Re-interns the worker's locally catalogued rules into the shared
        catalog in local-id (= discovery) order — the order a serial
        build would have interned them — then archives and indexes the
        re-identified rules exactly as :meth:`add_window` does.
        """
        timer = knowledge_base.timer
        timer.add(PHASE_ITEMSETS, mined.itemset_seconds)
        timer.add(PHASE_RULES, mined.rule_seconds)
        with timer.phase(PHASE_MERGE):
            scored = [
                local._replace(rule_id=knowledge_base.catalog.intern(local.rule))
                for local in mined.scored
            ]
            scored.sort(key=lambda s: s.rule_id)
        return self._index_window(knowledge_base, mined.window_size, scored)

    def _index_window(
        self,
        knowledge_base: TaraKnowledgeBase,
        window_size: int,
        scored: Sequence[ScoredRule],
    ) -> WindowSlice:
        """Archive + EPS-index one window's scored rules (steps 3–4)."""
        config = self.config
        timer = knowledge_base.timer
        window = len(knowledge_base.slices)

        with timer.phase(PHASE_ARCHIVE):
            # A rule missing from this window was pruned either because
            # its itemset fell below the support threshold (count <
            # ceil(supp_g * n)) or because its confidence fell below
            # conf_g (count < conf_g * antecedent <= conf_g * n).  The
            # exclusive bound on an unarchived rule's count is therefore
            # the max of the two ceilings — this is what makes the
            # roll-up approximation bounds sound.
            bound = max(
                min_count_for(config.min_support, window_size),
                min_count_for(config.min_confidence, window_size),
            )
            knowledge_base.archive.begin_window(window_size, bound)
            knowledge_base.archive.record(window, scored)

        with timer.phase(PHASE_EPS):
            groups = group_by_counts(scored)
            item_source = self._item_index_source(knowledge_base, scored)
            window_slice = WindowSlice.from_count_groups(
                window,
                window_size,
                groups,
                generation_setting=config.setting,
                item_index_source=item_source,
            )

        knowledge_base.slices.append(window_slice)
        knowledge_base.rules_in_window.append(
            sorted({s.rule_id for s in scored})
        )
        knowledge_base.window_sizes.append(window_size)
        return window_slice

    def _item_index_source(
        self,
        knowledge_base: TaraKnowledgeBase,
        scored: Sequence[ScoredRule],
    ) -> Optional[Dict[RuleId, Sequence[ItemId]]]:
        if not self.config.build_item_index:
            return None
        return {s.rule_id: s.rule.items for s in scored}


def build_knowledge_base(
    windows: WindowedDatabase, config: GenerationConfig
) -> TaraKnowledgeBase:
    """One-call convenience wrapper over :class:`TaraBuilder`."""
    return TaraBuilder(config).build(windows)
