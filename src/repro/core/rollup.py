"""Roll-up and drill-down over time granularities.

TARA pregenerates associations per *basic* window; a query over a
coarser period (a month over daily windows) is answered from the
archived counts (Section 2.4.1).  Because counts are additive this is
exact whenever the rule was archived in every covered window.  Windows
where the rule fell below the generation thresholds contribute an
unknown count bounded by those thresholds, giving the paper's
approximation bound:

    A rule unarchived in window ``w`` was pruned either by support
    (count < ceil(supp_g · n_w)) or by confidence
    (count < conf_g · antecedent ≤ conf_g · n_w), so its count there is
    at most ``B_w − 1`` with ``B_w = max(ceil(supp_g·n_w),
    ceil(conf_g·n_w))``.  For a rolled-up period ``P`` of windows ``W``
    with total size ``N = Σ_{w∈W} n_w``, the archived support
    under-estimates the true support by at most

        err(P) = Σ_{w ∈ missing(rule)} (B_w − 1) / N
               ≤ max(supp_g, conf_g),

    and is exact when ``missing(rule) = ∅``.

The explorer exposes both the *certain* answer (rules that qualify even
pessimistically) and the *possible* answer (rules that could qualify
optimistically); their gap is the practical effect of the bound.
"""

from __future__ import annotations

from typing import List

from repro.core.archive import TarArchive
from repro.core.builder import TaraKnowledgeBase
from repro.core.queries import RollupAnswer, RolledUpRule
from repro.core.regions import ParameterSetting
from repro.data.periods import PeriodSpec


def max_support_error(archive: TarArchive, spec: PeriodSpec) -> float:
    """Worst-case support under-estimation for a roll-up over *spec*.

    This is the theoretical bound above with ``missing = W`` (every
    window missing) — the loosest case any rule can hit.
    """
    total = sum(archive.window_size(w) for w in spec)
    if total == 0:
        return 0.0
    worst_missing = sum(
        max(archive.missing_count_bound(w) - 1, 0) for w in spec
    )
    return worst_missing / total


def rolled_up_mine(
    knowledge_base: TaraKnowledgeBase,
    setting: ParameterSetting,
    spec: PeriodSpec,
) -> RollupAnswer:
    """Mine rules qualifying at *setting* over the merged windows of *spec*.

    Candidates are the rules archived in at least one covered window;
    each is rolled up exactly on counts, then classified:

    * **certain** — qualifies even with missing windows contributing
      nothing to support and everything to the confidence denominator;
    * **possible** — qualifies when missing windows contribute the
      maximal counts the generation threshold allows.

    ``certain ⊆ possible`` always holds.
    """
    archive = knowledge_base.archive
    candidates = knowledge_base.candidate_rules(spec)
    certain: List[RolledUpRule] = []
    possible: List[RolledUpRule] = []
    for rule_id in candidates:
        measure = archive.rolled_up(rule_id, spec)
        entry = RolledUpRule(
            rule_id=rule_id,
            rule=knowledge_base.catalog.get(rule_id),
            measure=measure,
        )
        pessimistic_ok = (
            measure.support_low >= setting.min_support
            and measure.confidence_low >= setting.min_confidence
        )
        optimistic_ok = (
            measure.support_high >= setting.min_support
            and measure.confidence_high >= setting.min_confidence
        )
        if pessimistic_ok:
            certain.append(entry)
        if optimistic_ok:
            possible.append(entry)
    return RollupAnswer(
        setting=setting,
        windows=tuple(spec),
        certain=tuple(certain),
        possible=tuple(possible),
        max_support_error=max_support_error(archive, spec),
    )
