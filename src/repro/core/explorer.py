"""The TARA Online Explorer — interactive operations over the knowledge base.

Every operation here is an index/archive lookup; none touches the raw
transactions.  That is the paper's central claim: after the offline
phase, traditional temporal mining *and* the novel exploration
operations all run in milliseconds ("3 to 5 orders of magnitude faster
than its state-of-the-art competitors").

Operation map (paper query classes → methods):

====  ==========================================  =======================
Q     paper operation                             method
====  ==========================================  =======================
—     traditional mining with time spec           :meth:`TaraExplorer.mine`
Q1    rule trajectory across periods              :meth:`TaraExplorer.trajectories`
Q2    evolving ruleset comparison                 :meth:`TaraExplorer.compare`
Q3    parameter recommendation (stable region)    :meth:`TaraExplorer.recommend`
Q4    trajectory summaries / most-stable rules    :meth:`TaraExplorer.top_rules`
Q5    content-based exploration (TARA-S)          :meth:`TaraExplorer.content`
—     roll-up / drill-down                        :meth:`TaraExplorer.mine_rolled_up`
====  ==========================================  =======================

Every operation is also describable as a frozen request dataclass
(:mod:`repro.core.queries`) executed through
:meth:`TaraExplorer.execute` — the unified entry point the online
serving layer (:mod:`repro.service`) canonicalizes and caches.  The
named methods above are thin shims over that dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union, overload

from repro.common.deprecation import warn_deprecated
from repro.common.errors import QueryError
from repro.core.archive import WindowMeasure
from repro.core.builder import TaraKnowledgeBase
from repro.core.queries import (
    CompareQuery,
    ComparisonResult,
    ContentQuery,
    ExplorerQuery,
    MatchMode,
    MinedRule,
    Recommendation,
    RecommendQuery,
    RollupAnswer,
    RollupQuery,
    RuleTrajectory,
    TrajectoryQuery,
    WindowDiff,
)
from repro.core.regions import ParameterSetting
from repro.core.rollup import rolled_up_mine
from repro.core.trajectory import TrajectorySummary, summarize_trajectory
from repro.data.items import ItemId
from repro.data.periods import PeriodSpec
from repro.mining.rules import RuleId

#: Everything ``TaraExplorer.execute`` can return, by request type.
ExplorerAnswer = Union[
    List[RuleTrajectory],
    ComparisonResult,
    Recommendation,
    Dict[int, List[RuleId]],
    RollupAnswer,
]


class TaraExplorer:
    """Online query processor over a built :class:`TaraKnowledgeBase`."""

    def __init__(self, knowledge_base: TaraKnowledgeBase) -> None:
        if knowledge_base.window_count == 0:
            raise QueryError("knowledge base holds no windows; build it first")
        self.knowledge_base = knowledge_base

    # ------------------------------------------------------------------
    # unified request dispatch
    # ------------------------------------------------------------------
    @overload
    def execute(self, query: TrajectoryQuery) -> List[RuleTrajectory]: ...

    @overload
    def execute(self, query: CompareQuery) -> ComparisonResult: ...

    @overload
    def execute(self, query: RecommendQuery) -> Recommendation: ...

    @overload
    def execute(self, query: ContentQuery) -> Dict[int, List[RuleId]]: ...

    @overload
    def execute(self, query: RollupQuery) -> RollupAnswer: ...

    def execute(self, query: ExplorerQuery) -> ExplorerAnswer:
        """Execute one frozen request dataclass (the unified entry point).

        Dispatches on the request type: :class:`TrajectoryQuery` (Q1),
        :class:`CompareQuery` (Q2), :class:`RecommendQuery` (Q3),
        :class:`ContentQuery` (Q5), :class:`RollupQuery` (roll-up).  The
        legacy per-operation methods are thin shims over this dispatch,
        and the serving layer (:mod:`repro.service`) caches through it.
        """
        if isinstance(query, TrajectoryQuery):
            return self._trajectories(query)
        if isinstance(query, CompareQuery):
            return self._compare(query)
        if isinstance(query, RecommendQuery):
            return self._recommend(query)
        if isinstance(query, ContentQuery):
            return self._content(query)
        if isinstance(query, RollupQuery):
            return self._mine_rolled_up(query)
        raise QueryError(
            f"unknown explorer query type {type(query).__name__!r}"
        )

    # ------------------------------------------------------------------
    # traditional mining
    # ------------------------------------------------------------------
    def ruleset(self, setting: ParameterSetting, window: int) -> List[RuleId]:
        """Rule ids valid at *setting* in one basic window (pure lookup).

        Resolves through the window's stable-region lookup: the slice
        memoizes one ruleset per region, so every setting inside a
        region shares a single staircase scan.
        """
        return self.knowledge_base.slice(window).collect(setting)

    def mine(
        self, setting: ParameterSetting, spec: Optional[PeriodSpec] = None
    ) -> Dict[int, List[MinedRule]]:
        """Traditional temporal mining: per-window rulesets with measures.

        *spec* defaults to every window.  Each window's answer comes from
        its EPS slice; measures are decoded from the archive.
        """
        spec = self._spec(spec)
        answer: Dict[int, List[MinedRule]] = {}
        archive = self.knowledge_base.archive
        catalog = self.knowledge_base.catalog
        for window in spec:
            mined: List[MinedRule] = []
            for rule_id in self.ruleset(setting, window):
                measure = archive.measure_at(rule_id, window)
                if measure is None:  # pragma: no cover - index/archive agree
                    continue
                mined.append(
                    MinedRule(
                        rule_id=rule_id,
                        rule=catalog.get(rule_id),
                        support=measure.support,
                        confidence=measure.confidence,
                    )
                )
            answer[window] = mined
        return answer

    def mine_rolled_up(
        self, setting: ParameterSetting, spec: PeriodSpec
    ) -> RollupAnswer:
        """Mining over the *merged* period (roll-up semantics).

        Answers a coarse-granularity request from archived counts; see
        :mod:`repro.core.rollup` for the exactness guarantee.

        .. deprecated:: PR 8
           Use ``execute(RollupQuery(...))``.
        """
        warn_deprecated(
            "explorer.mine_rolled_up",
            "TaraExplorer.mine_rolled_up() is deprecated: use "
            "execute(RollupQuery(setting=..., spec=...))",
        )
        return self.execute(RollupQuery(setting=setting, spec=spec))

    def _mine_rolled_up(self, query: RollupQuery) -> RollupAnswer:
        spec = query.spec.restrict_to(self.knowledge_base.window_count)
        return rolled_up_mine(self.knowledge_base, query.setting, spec)

    # ------------------------------------------------------------------
    # Q1: rule trajectory
    # ------------------------------------------------------------------
    def trajectories(
        self,
        setting: ParameterSetting,
        anchor_window: int,
        spec: Optional[PeriodSpec] = None,
    ) -> List[RuleTrajectory]:
        """Q1: rules matching *setting* in *anchor_window*, tracked over *spec*.

        The anchor ruleset comes from the EPS slice; each rule's values
        in the other requested windows are decoded from the archive
        (``None`` where the rule was not archived).

        .. deprecated:: PR 8
           Use ``execute(TrajectoryQuery(...))``.
        """
        warn_deprecated(
            "explorer.trajectories",
            "TaraExplorer.trajectories() is deprecated: use "
            "execute(TrajectoryQuery(setting=..., anchor_window=...))",
        )
        return self.execute(
            TrajectoryQuery(
                setting=setting, anchor_window=anchor_window, spec=spec
            )
        )

    def _trajectories(self, query: TrajectoryQuery) -> List[RuleTrajectory]:
        setting, anchor_window = query.setting, query.anchor_window
        spec = self._spec(query.spec)
        archive = self.knowledge_base.archive
        catalog = self.knowledge_base.catalog
        wanted = set(spec)
        result: List[RuleTrajectory] = []
        for rule_id in self.ruleset(setting, anchor_window):
            # One series decode per rule, not one lookup per window.
            measures: Dict[int, Optional[WindowMeasure]] = dict.fromkeys(spec)
            for measure in archive.series(rule_id):
                if measure.window in wanted:
                    measures[measure.window] = measure
            result.append(
                RuleTrajectory(
                    rule_id=rule_id, rule=catalog.get(rule_id), measures=measures
                )
            )
        return result

    # ------------------------------------------------------------------
    # Q2: evolving ruleset comparison
    # ------------------------------------------------------------------
    def compare(
        self,
        first: ParameterSetting,
        second: ParameterSetting,
        spec: Optional[PeriodSpec] = None,
        mode: MatchMode = MatchMode.SINGLE,
    ) -> ComparisonResult:
        """Q2: difference of two settings' rulesets over shared periods.

        ``SINGLE`` mode reports a rule if the two settings disagree on it
        in at least one window; ``EXACT`` mode only if they disagree in
        every window of *spec*.

        .. deprecated:: PR 8
           Use ``execute(CompareQuery(...))``.
        """
        warn_deprecated(
            "explorer.compare",
            "TaraExplorer.compare() is deprecated: use "
            "execute(CompareQuery(first=..., second=...))",
        )
        return self.execute(
            CompareQuery(first=first, second=second, spec=spec, mode=mode)
        )

    def _compare(self, query: CompareQuery) -> ComparisonResult:
        first, second, mode = query.first, query.second, query.mode
        spec = self._spec(query.spec)
        per_window: List[WindowDiff] = []
        only_first_votes: Dict[RuleId, int] = {}
        only_second_votes: Dict[RuleId, int] = {}
        for window in spec:
            ruleset_first = set(self.ruleset(first, window))
            ruleset_second = set(self.ruleset(second, window))
            only_first = tuple(sorted(ruleset_first - ruleset_second))
            only_second = tuple(sorted(ruleset_second - ruleset_first))
            per_window.append(
                WindowDiff(
                    window=window,
                    only_first=only_first,
                    only_second=only_second,
                    common=tuple(sorted(ruleset_first & ruleset_second)),
                )
            )
            for rule_id in only_first:
                only_first_votes[rule_id] = only_first_votes.get(rule_id, 0) + 1
            for rule_id in only_second:
                only_second_votes[rule_id] = only_second_votes.get(rule_id, 0) + 1

        needed = len(spec) if mode is MatchMode.EXACT else 1
        aggregated_first = tuple(
            sorted(r for r, votes in only_first_votes.items() if votes >= needed)
        )
        aggregated_second = tuple(
            sorted(r for r, votes in only_second_votes.items() if votes >= needed)
        )
        return ComparisonResult(
            first=first,
            second=second,
            mode=mode,
            per_window=tuple(per_window),
            only_first=aggregated_first,
            only_second=aggregated_second,
        )

    # ------------------------------------------------------------------
    # Q3: parameter recommendation
    # ------------------------------------------------------------------
    def recommend(
        self, setting: ParameterSetting, window: Optional[int] = None
    ) -> Recommendation:
        """Q3: the enclosing stable region and its axis neighbors.

        *window* defaults to the latest.  The region bounds answer "how
        far can I move the thresholds without changing the result"; the
        neighbors preview the ruleset-size effect of crossing each
        boundary.

        .. deprecated:: PR 8
           Use ``execute(RecommendQuery(...))``.
        """
        warn_deprecated(
            "explorer.recommend",
            "TaraExplorer.recommend() is deprecated: use "
            "execute(RecommendQuery(setting=..., window=...))",
        )
        return self.execute(RecommendQuery(setting=setting, window=window))

    def _recommend(self, query: RecommendQuery) -> Recommendation:
        setting, window = query.setting, query.window
        if window is None:
            window = self.knowledge_base.window_count - 1
        window_slice = self.knowledge_base.slice(window)
        region = window_slice.region_for(setting)
        neighbors = window_slice.neighbor_regions(setting)
        return Recommendation(
            window=window, setting=setting, region=region, neighbors=neighbors
        )

    # ------------------------------------------------------------------
    # Q4: trajectory summarization / insight queries
    # ------------------------------------------------------------------
    def summarize(
        self, rule_id: RuleId, spec: Optional[PeriodSpec] = None
    ) -> TrajectorySummary:
        """Coverage/stability/std/trend of one rule over *spec*."""
        spec = self._spec(spec)
        archive = self.knowledge_base.archive
        measures = [archive.measure_at(rule_id, window) for window in spec]
        return summarize_trajectory(rule_id, measures)

    def top_rules(
        self,
        setting: ParameterSetting,
        anchor_window: int,
        *,
        key: str = "stability",
        k: int = 10,
        spec: Optional[PeriodSpec] = None,
        descending: bool = True,
    ) -> List[TrajectorySummary]:
        """Q4: top-*k* matching rules ranked by a trajectory measure.

        *key* is any numeric :class:`TrajectorySummary` field
        (``"stability"``, ``"coverage"``, ``"trend"``,
        ``"confidence_std"``, ...); ``descending=False`` ranks ascending
        (e.g. the *least* stable rules).
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        spec = self._spec(spec)
        summaries = [
            self.summarize(rule_id, spec)
            for rule_id in self.ruleset(setting, anchor_window)
        ]
        try:
            summaries.sort(
                key=lambda s: getattr(s, key), reverse=descending
            )
        except AttributeError:
            raise QueryError(f"unknown trajectory measure {key!r}") from None
        return summaries[:k]

    # ------------------------------------------------------------------
    # Q5: content-based exploration
    # ------------------------------------------------------------------
    def content(
        self,
        setting: ParameterSetting,
        items: Sequence[ItemId],
        spec: Optional[PeriodSpec] = None,
    ) -> Dict[int, List[RuleId]]:
        """Q5: valid rules mentioning any of *items*, per window.

        Requires a knowledge base built with ``build_item_index=True``
        (the TARA-S variant).

        .. deprecated:: PR 8
           Use ``execute(ContentQuery(...))``.
        """
        warn_deprecated(
            "explorer.content",
            "TaraExplorer.content() is deprecated: use "
            "execute(ContentQuery(setting=..., items=...))",
        )
        return self.execute(
            ContentQuery(setting=setting, items=tuple(items), spec=spec)
        )

    def _content(self, query: ContentQuery) -> Dict[int, List[RuleId]]:
        if not query.items:
            raise QueryError("content query needs at least one item")
        spec = self._spec(query.spec)
        return {
            window: self.knowledge_base.slice(window).collect_items(
                query.setting, query.items
            )
            for window in spec
        }

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _spec(self, spec: Optional[PeriodSpec]) -> PeriodSpec:
        if spec is None:
            return self.knowledge_base.all_windows()
        return spec.restrict_to(self.knowledge_base.window_count)
