"""Trajectory measures: summarizing a rule's evolution across windows.

Definition 10 of the paper calls the stream of a rule's parametric
locations its *trajectory*, and notes it "allows us to compute different
measures about the rule that summarize its evolving patterns like
coverage, stability and standard deviation".  This module implements
those summaries over the archive's decoded series.

Definitions used here:

coverage
    Fraction of the requested windows in which the rule was archived.
stability
    ``1 / (1 + population_std(confidences))`` over the present windows —
    a monotone transform of the standard deviation onto ``(0, 1]`` where
    1 means perfectly constant confidence.  (The paper defers to [67]
    for the exact functional form; any strictly decreasing transform of
    dispersion induces the same ranking, which is what the Q4-style
    "most stable rules" queries consume.)
trend
    Least-squares slope of confidence against window index: positive for
    strengthening rules, negative for fading ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.stats import mean, population_std
from repro.core.archive import WindowMeasure
from repro.mining.rules import RuleId


@dataclass(frozen=True)
class TrajectorySummary:
    """Aggregated evolution measures of one rule over a window set."""

    rule_id: RuleId
    windows_requested: int
    windows_present: int
    coverage: float
    mean_support: float
    mean_confidence: float
    support_std: float
    confidence_std: float
    stability: float
    trend: float

    @property
    def is_persistent(self) -> bool:
        """True when the rule was archived in every requested window."""
        return self.windows_present == self.windows_requested


def summarize_trajectory(
    rule_id: RuleId,
    measures: Sequence[Optional[WindowMeasure]],
) -> TrajectorySummary:
    """Summarize a rule's per-window measures (``None`` = absent).

    Raises :class:`ValidationError` for an empty window list; a rule
    absent from *every* window yields coverage 0 and zero-valued
    statistics (there is nothing to average).
    """
    if not measures:
        raise ValidationError("cannot summarize a trajectory over zero windows")
    present = [(i, m) for i, m in enumerate(measures) if m is not None]
    requested = len(measures)
    if not present:
        return TrajectorySummary(
            rule_id=rule_id,
            windows_requested=requested,
            windows_present=0,
            coverage=0.0,
            mean_support=0.0,
            mean_confidence=0.0,
            support_std=0.0,
            confidence_std=0.0,
            stability=0.0,
            trend=0.0,
        )
    supports = [m.support for _, m in present]
    confidences = [m.confidence for _, m in present]
    confidence_std = population_std(confidences)
    return TrajectorySummary(
        rule_id=rule_id,
        windows_requested=requested,
        windows_present=len(present),
        coverage=len(present) / requested,
        mean_support=mean(supports),
        mean_confidence=mean(confidences),
        support_std=population_std(supports),
        confidence_std=confidence_std,
        stability=1.0 / (1.0 + confidence_std),
        trend=_slope([i for i, _ in present], confidences),
    )


def _slope(xs: Sequence[int], ys: Sequence[float]) -> float:
    """Least-squares slope; 0.0 when under-determined.

    Uses the cross-moment form ``(n·Σxy − Σx·Σy) / (n·Σx² − (Σx)²)``:
    the window indices *xs* are integers, so the denominator is an
    exact integer and "all windows coincide" is an exact integer test
    rather than a float ``== 0.0`` comparison on an accumulated sum.
    """
    n = len(xs)
    if n < 2:
        return 0.0
    sum_x = sum(xs)
    denominator = n * sum(x * x for x in xs) - sum_x * sum_x
    if denominator == 0:  # all x identical -> vertical, undefined slope
        return 0.0
    sum_y = sum(ys)
    sum_xy = sum(x * y for x, y in zip(xs, ys))
    return (n * sum_xy - sum_x * sum_y) / denominator
