"""Saving and loading TARA knowledge bases.

The offline phase is the expensive part of TARA; a deployment builds
the knowledge base once per batch and serves analysts from it for the
rest of the window's lifetime.  This module persists a built
:class:`~repro.core.builder.TaraKnowledgeBase` to a single file and
restores it byte-exactly, so the online explorer can start without
re-mining anything.

Format: a JSON header (version, config, window bookkeeping, catalog)
followed by the archive's sealed per-rule blobs, all inside one
JSON-compatible envelope.  The archive blobs are base85-encoded — they
are already delta+varint compressed, so the ~25% base85 overhead on an
already-small payload beats adding a binary container format.  No
pickle anywhere: the file is inspectable and safe to load.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Union

from repro.common.errors import DataFormatError
from repro.common.gcscope import paused_gc
from repro.core.archive import TarArchive, _decode_series, _encode_series
from repro.core.builder import GenerationConfig, TaraKnowledgeBase
from repro.core.locations import group_by_counts
from repro.core.regions import WindowSlice
from repro.common.timing import PhaseTimer
from repro.mining.rules import Rule, RuleCatalog, ScoredRule

FORMAT_VERSION = 1


def save_knowledge_base(
    knowledge_base: TaraKnowledgeBase, path: Union[str, Path]
) -> int:
    """Write *knowledge_base* to *path*; returns bytes written.

    The archive is sealed as a side effect (sealing is idempotent and
    required so every series has its canonical encoding).
    """
    knowledge_base.archive.seal()
    archive = knowledge_base.archive
    payload = {
        "format_version": FORMAT_VERSION,
        "config": {
            "min_support": knowledge_base.config.min_support,
            "min_confidence": knowledge_base.config.min_confidence,
            "miner": knowledge_base.config.miner,
            "build_item_index": knowledge_base.config.build_item_index,
            "max_itemset_size": knowledge_base.config.max_itemset_size,
        },
        "window_sizes": knowledge_base.window_sizes,
        "missing_count_bounds": [
            archive.missing_count_bound(w) for w in range(archive.window_count)
        ],
        "rules_in_window": knowledge_base.rules_in_window,
        "catalog": [
            {"antecedent": list(rule.antecedent), "consequent": list(rule.consequent)}
            for rule in knowledge_base.catalog
        ],
        "archive": {
            str(rule_id): base64.b85encode(
                _encode_series(archive._entries(rule_id))
            ).decode("ascii")
            for rule_id in archive.rule_ids()
        },
    }
    text = json.dumps(payload, separators=(",", ":"))
    Path(path).write_text(text, encoding="utf-8")
    return len(text.encode("utf-8"))


def load_knowledge_base(path: Union[str, Path]) -> TaraKnowledgeBase:
    """Restore a knowledge base written by :func:`save_knowledge_base`.

    The EPS slices are rebuilt from the archived counts (they are a
    deterministic function of them), so the restored object answers
    every query identically to the original — verified by the test
    suite.  The build timer is not persisted (it described the original
    machine's offline run).
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise DataFormatError(f"cannot read knowledge base from {path}: {error}")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise DataFormatError(
            f"unsupported knowledge-base format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )

    config = GenerationConfig(
        min_support=payload["config"]["min_support"],
        min_confidence=payload["config"]["min_confidence"],
        miner=payload["config"]["miner"],
        build_item_index=payload["config"]["build_item_index"],
        max_itemset_size=payload["config"]["max_itemset_size"],
    )
    catalog = RuleCatalog()
    for entry in payload["catalog"]:
        catalog.intern(
            Rule(
                antecedent=tuple(entry["antecedent"]),
                consequent=tuple(entry["consequent"]),
            )
        )

    window_sizes = list(payload["window_sizes"])
    bounds = list(payload["missing_count_bounds"])
    rules_in_window = [list(rule_ids) for rule_ids in payload["rules_in_window"]]
    if not (len(window_sizes) == len(bounds) == len(rules_in_window)):
        raise DataFormatError("inconsistent window bookkeeping in saved file")

    # Decode every rule's series once; group per window for the slices.
    series_by_rule = {}
    for rule_id_text, blob_text in payload["archive"].items():
        rule_id = int(rule_id_text)
        blob = base64.b85decode(blob_text.encode("ascii"))
        series_by_rule[rule_id] = _decode_series(blob)

    archive = TarArchive()
    per_window_scored: list[list[ScoredRule]] = [[] for _ in window_sizes]
    for rule_id, series in series_by_rule.items():
        rule = catalog.get(rule_id)
        for window, rule_count, antecedent_count, consequent_count in series:
            if not 0 <= window < len(window_sizes):
                raise DataFormatError(
                    f"rule {rule_id} references unknown window {window}"
                )
            n = window_sizes[window]
            per_window_scored[window].append(
                ScoredRule(
                    rule_id=rule_id,
                    rule=rule,
                    support=rule_count / n if n else 0.0,
                    confidence=(
                        rule_count / antecedent_count if antecedent_count else 0.0
                    ),
                    rule_count=rule_count,
                    antecedent_count=antecedent_count,
                    window_size=n,
                    consequent_count=consequent_count,
                )
            )

    knowledge_base = TaraKnowledgeBase(
        config=config, catalog=catalog, archive=archive, timer=PhaseTimer()
    )
    # Bulk rebuild: every allocation below is retained, so pause the
    # cyclic collector exactly as the builder does.
    with paused_gc():
        for window, (size, bound) in enumerate(zip(window_sizes, bounds)):
            archive.begin_window(size, bound)
            scored = sorted(per_window_scored[window], key=lambda s: s.rule_id)
            archive.record(window, scored)
            item_source = (
                {s.rule_id: s.rule.items for s in scored}
                if config.build_item_index
                else None
            )
            knowledge_base.slices.append(
                WindowSlice.from_count_groups(
                    window,
                    size,
                    group_by_counts(scored),
                    generation_setting=config.setting,
                    item_index_source=item_source,
                )
            )
            knowledge_base.rules_in_window.append(rules_in_window[window])
            knowledge_base.window_sizes.append(size)
    archive.seal()
    return knowledge_base
