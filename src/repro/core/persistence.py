"""Saving and loading TARA knowledge bases.

The offline phase is the expensive part of TARA; a deployment builds
the knowledge base once per batch and serves analysts from it for the
rest of the window's lifetime.  This module persists a built
:class:`~repro.core.builder.TaraKnowledgeBase` and restores it with
answers byte-identical to the original — verified by the test suite
and gated by ``repro bench-persist``.

Two formats:

* **v2 (default)** — the segmented binary container of
  :mod:`repro.core.storage`: meta JSON + shard/window directories +
  raw varint series blocks, written by
  :func:`repro.core.storage.writer.write_container`.  Loading returns a
  :class:`~repro.core.lazykb.LazyTaraKnowledgeBase` that ``mmap``\\ s
  the file and materializes per window / per rule on first touch under
  an optional ``memory_budget`` — RSS stays bounded however large the
  KB is.
* **v1 (deprecated for writing)** — the original single JSON envelope
  with base85-encoded blobs, eagerly decoded and fully rebuilt on
  load.  Still loadable forever; writing it warns once per process via
  :mod:`repro.common.deprecation` (``repro convert`` migrates old
  files).

No pickle anywhere: both formats are inspectable and safe to load.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.common.deprecation import warn_deprecated
from repro.common.errors import DataFormatError
from repro.common.gcscope import paused_gc
from repro.common.timing import PhaseTimer
from repro.core.archive import TarArchive, _decode_series
from repro.core.builder import GenerationConfig, TaraKnowledgeBase
from repro.core.lazykb import LazyTaraKnowledgeBase
from repro.core.locations import group_by_counts
from repro.core.regions import WindowSlice
from repro.core.storage.format import (
    CONTAINER_FORMAT_VERSION,
    DEFAULT_SHARD_SIZE,
    MAGIC,
)
from repro.core.storage.reader import ShardedSeriesSource
from repro.core.storage.writer import WindowEntry, write_container
from repro.data.periods import PeriodSpec
from repro.mining.rules import Rule, RuleCatalog, ScoredRule

#: The legacy eager JSON envelope.
FORMAT_VERSION = 1
#: The segmented binary container — the default write format.
DEFAULT_FORMAT_VERSION = CONTAINER_FORMAT_VERSION

_V1_WRITE_DEPRECATION_KEY = "persistence.v1-write"


def save_knowledge_base(
    knowledge_base: TaraKnowledgeBase,
    path: Union[str, Path],
    *,
    format_version: int = DEFAULT_FORMAT_VERSION,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> int:
    """Write *knowledge_base* to *path*; returns bytes written.

    The archive is sealed as a side effect (sealing is idempotent and
    required so every series has its canonical encoding).  Writing the
    legacy v1 envelope still works but warns once per process;
    *shard_size* only applies to v2.
    """
    if format_version == CONTAINER_FORMAT_VERSION:
        return _save_v2(knowledge_base, Path(path), shard_size)
    if format_version == FORMAT_VERSION:
        warn_deprecated(
            _V1_WRITE_DEPRECATION_KEY,
            "writing knowledge bases in the eager v1 JSON format is "
            "deprecated; write format v2 (the default) or migrate old "
            "files with `repro convert`",
        )
        return _save_v1(knowledge_base, Path(path))
    raise DataFormatError(
        f"unknown knowledge-base format version {format_version!r} "
        f"(known: {FORMAT_VERSION}, {CONTAINER_FORMAT_VERSION})"
    )


def load_knowledge_base(
    path: Union[str, Path],
    *,
    memory_budget: Optional[int] = None,
) -> TaraKnowledgeBase:
    """Restore a knowledge base written by :func:`save_knowledge_base`.

    The format is sniffed from the file's first bytes.  A v2 container
    loads lazily (see the module docstring); *memory_budget* bounds its
    resident decoded series in bytes.  A v1 envelope loads eagerly and
    ignores *memory_budget* (everything is resident by construction).
    The build timer is not persisted (it described the original
    machine's offline run).
    """
    file_path = Path(path)
    try:
        with open(file_path, "rb") as handle:
            head = handle.read(len(MAGIC))
    except OSError as error:
        raise DataFormatError(
            f"cannot read knowledge base from {file_path}: {error}"
        ) from error
    if head == MAGIC:
        return _load_v2(file_path, memory_budget)
    return _load_v1(file_path)


# ----------------------------------------------------------------------
# format v2: segmented binary container, lazy load
# ----------------------------------------------------------------------
def _save_v2(
    knowledge_base: TaraKnowledgeBase, path: Path, shard_size: int
) -> int:
    knowledge_base.archive.seal()
    archive = knowledge_base.archive
    rule_ids = sorted(archive.rule_ids())

    per_window: List[List[WindowEntry]] = [
        [] for _ in range(archive.window_count)
    ]
    encoded: List[Tuple[int, bytes]] = []
    entry_count = 0
    encoded_bytes = 0
    for rule_id in rule_ids:
        blob = archive.encoded_series(rule_id)
        encoded.append((rule_id, blob))
        encoded_bytes += len(blob)
        for window, rule_count, antecedent_count, consequent_count in (
            archive.series_entries(rule_id)
        ):
            per_window[window].append(
                (rule_id, rule_count, antecedent_count, consequent_count)
            )
            entry_count += 1
    # Iterating rules in ascending id keeps each window's rows sorted.

    meta = {
        "config": _config_payload(knowledge_base.config),
        "window_sizes": list(knowledge_base.window_sizes),
        "missing_count_bounds": [
            archive.missing_count_bound(w) for w in range(archive.window_count)
        ],
        "catalog": _catalog_payload(knowledge_base.catalog),
        "counts": {
            "rules": len(rule_ids),
            "windows": archive.window_count,
            "entries": entry_count,
            "encoded_bytes": encoded_bytes,
        },
    }
    summary = write_container(
        path,
        meta=meta,
        window_entries=per_window,
        series=encoded,
        shard_size=shard_size,
    )
    return summary["file_bytes"]


def _load_v2(
    path: Path, memory_budget: Optional[int]
) -> LazyTaraKnowledgeBase:
    source = ShardedSeriesSource(path, memory_budget)
    try:
        meta = source.meta
        config = _config_from(meta, path)
        catalog = _catalog_from(meta, path)
        window_sizes = meta.get("window_sizes")
        bounds = meta.get("missing_count_bounds")
        if not isinstance(window_sizes, list) or not isinstance(bounds, list):
            raise DataFormatError(
                f"{path}: container meta is missing window bookkeeping"
            )
        if not (
            len(window_sizes) == len(bounds) == source.window_count
        ):
            raise DataFormatError(
                f"{path}: inconsistent window bookkeeping "
                f"({len(window_sizes)} sizes, {len(bounds)} bounds, "
                f"{source.window_count} window blocks)"
            )
    except Exception:
        source.close()
        raise
    return LazyTaraKnowledgeBase.from_source(
        source,
        config=config,
        catalog=catalog,
        window_sizes=window_sizes,
        missing_count_bounds=bounds,
    )


# ----------------------------------------------------------------------
# format v1: eager JSON envelope
# ----------------------------------------------------------------------
def _save_v1(knowledge_base: TaraKnowledgeBase, path: Path) -> int:
    knowledge_base.archive.seal()
    archive = knowledge_base.archive
    # candidate_rules reproduces the builder's per-window id lists for
    # eager and lazy knowledge bases alike (sorted unique archived ids).
    rules_in_window = [
        knowledge_base.candidate_rules(PeriodSpec([w]))
        for w in range(archive.window_count)
    ]
    payload = {
        "format_version": FORMAT_VERSION,
        "config": _config_payload(knowledge_base.config),
        "window_sizes": list(knowledge_base.window_sizes),
        "missing_count_bounds": [
            archive.missing_count_bound(w) for w in range(archive.window_count)
        ],
        "rules_in_window": rules_in_window,
        "catalog": _catalog_payload(knowledge_base.catalog),
        "archive": {
            str(rule_id): base64.b85encode(
                archive.encoded_series(rule_id)
            ).decode("ascii")
            for rule_id in archive.rule_ids()
        },
    }
    text = json.dumps(payload, separators=(",", ":"))
    path.write_text(text, encoding="utf-8")
    return len(text.encode("utf-8"))


def _load_v1(path: Path) -> TaraKnowledgeBase:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise DataFormatError(
            f"cannot read knowledge base from {path}: {error}"
        ) from error
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise DataFormatError(
            f"unsupported knowledge-base format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )

    config = _config_from(payload, path)
    catalog = _catalog_from(payload, path)

    window_sizes = list(payload["window_sizes"])
    bounds = list(payload["missing_count_bounds"])
    rules_in_window = [list(rule_ids) for rule_ids in payload["rules_in_window"]]
    if not (len(window_sizes) == len(bounds) == len(rules_in_window)):
        raise DataFormatError("inconsistent window bookkeeping in saved file")

    # Decode every rule's series once; group per window for the slices.
    series_by_rule = {}
    for rule_id_text, blob_text in payload["archive"].items():
        rule_id = int(rule_id_text)
        blob = base64.b85decode(blob_text.encode("ascii"))
        series_by_rule[rule_id] = _decode_series(blob)

    archive = TarArchive()
    per_window_scored: List[List[ScoredRule]] = [[] for _ in window_sizes]
    for rule_id, series in series_by_rule.items():
        rule = catalog.get(rule_id)
        for window, rule_count, antecedent_count, consequent_count in series:
            if not 0 <= window < len(window_sizes):
                raise DataFormatError(
                    f"rule {rule_id} references unknown window {window}"
                )
            n = window_sizes[window]
            per_window_scored[window].append(
                ScoredRule(
                    rule_id=rule_id,
                    rule=rule,
                    support=rule_count / n if n else 0.0,
                    confidence=(
                        rule_count / antecedent_count if antecedent_count else 0.0
                    ),
                    rule_count=rule_count,
                    antecedent_count=antecedent_count,
                    window_size=n,
                    consequent_count=consequent_count,
                )
            )

    knowledge_base = TaraKnowledgeBase(
        config=config, catalog=catalog, archive=archive, timer=PhaseTimer()
    )
    # Bulk rebuild: every allocation below is retained, so pause the
    # cyclic collector exactly as the builder does.
    with paused_gc():
        for window, (size, bound) in enumerate(zip(window_sizes, bounds)):
            archive.begin_window(size, bound)
            scored = sorted(per_window_scored[window], key=lambda s: s.rule_id)
            archive.record(window, scored)
            item_source = (
                {s.rule_id: s.rule.items for s in scored}
                if config.build_item_index
                else None
            )
            knowledge_base.slices.append(
                WindowSlice.from_count_groups(
                    window,
                    size,
                    group_by_counts(scored),
                    generation_setting=config.setting,
                    item_index_source=item_source,
                )
            )
            knowledge_base.rules_in_window.append(rules_in_window[window])
            knowledge_base.window_sizes.append(size)
    archive.seal()
    return knowledge_base


# ----------------------------------------------------------------------
# shared payload pieces
# ----------------------------------------------------------------------
def _config_payload(config: GenerationConfig) -> Dict[str, Any]:
    return {
        "min_support": config.min_support,
        "min_confidence": config.min_confidence,
        "miner": config.miner,
        "build_item_index": config.build_item_index,
        "max_itemset_size": config.max_itemset_size,
    }


def _catalog_payload(catalog: RuleCatalog) -> List[Dict[str, Any]]:
    return [
        {"antecedent": list(rule.antecedent), "consequent": list(rule.consequent)}
        for rule in catalog
    ]


def _config_from(payload: Mapping[str, Any], path: Path) -> GenerationConfig:
    try:
        raw = payload["config"]
        return GenerationConfig(
            min_support=raw["min_support"],
            min_confidence=raw["min_confidence"],
            miner=raw["miner"],
            build_item_index=raw["build_item_index"],
            max_itemset_size=raw["max_itemset_size"],
        )
    except (KeyError, TypeError) as error:
        raise DataFormatError(
            f"{path}: malformed generation config in saved file: {error!r}"
        ) from error


def _catalog_from(payload: Mapping[str, Any], path: Path) -> RuleCatalog:
    catalog = RuleCatalog()
    try:
        for entry in payload["catalog"]:
            catalog.intern(
                Rule(
                    antecedent=tuple(entry["antecedent"]),
                    consequent=tuple(entry["consequent"]),
                )
            )
    except (KeyError, TypeError) as error:
        raise DataFormatError(
            f"{path}: malformed rule catalog in saved file: {error!r}"
        ) from error
    return catalog
