"""Bounded LRU cache over canonical region keys.

The cache is deliberately small and boring: an :class:`~collections.OrderedDict`
in least-recently-used order, a hard entry bound, and an eviction
counter.  Two instances exist per serving stack: the service-owned
*shared* cache (epoch-free entries — explicit-window answers, valid
forever because archived windows are immutable) and one *segment* per
:class:`repro.core.Snapshot` (generation-scoped entries, cleared in one
shot when the snapshot retires).  The pre-PR-8 per-entry purge protocol
(``purge_scoped_except``) is gone: invalidation is now snapshot
retirement, never a scan.

The container lives in :mod:`repro.core` because the snapshot segment
does; :mod:`repro.service.cache` re-exports it for the serving tier and
for older import paths.

The cache itself is **not** synchronized; its owner
(:class:`repro.service.service.TaraService` or the snapshot) holds a
lock around every call.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ValidationError

#: A canonical region key — the integer tuple produced by
#: :func:`repro.service.keys.canonicalize` (re-declared here so the
#: container does not depend on the key-construction layer above it).
CacheKey = Tuple[int, ...]


@dataclass(frozen=True)
class CacheEntry:
    """One memoized answer: the frozen value plus its epoch scope.

    ``epoch`` is :data:`repro.service.keys.EPOCH_FREE` for entries that
    can never go stale, or the serving epoch the entry is scoped to.
    """

    value: object
    epoch: int


class RegionKeyedCache:
    """A bounded, LRU-evicting map from canonical keys to answers."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValidationError(
                f"cache max_entries must be positive, got {max_entries}"
            )
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """The entry at *key* (refreshing its recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: CacheKey, value: object, epoch: int) -> int:
        """Insert (or refresh) *key*; returns how many entries were evicted."""
        self._entries[key] = CacheEntry(value=value, epoch=epoch)
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped.

        This is the segment-retirement primitive: when a snapshot's
        last reader drains, its whole segment is cleared in one shot.
        """
        dropped = len(self._entries)
        self._entries.clear()
        return dropped
