"""The paper's primary contribution: the TARA framework.

Offline phase: :class:`TaraBuilder` / :func:`build_knowledge_base`
produce a :class:`TaraKnowledgeBase` (rule catalog + TAR Archive + EPS
index).  Online phase: :class:`TaraExplorer`.  Incremental maintenance:
:class:`IncrementalTara`, which publishes immutable :class:`Snapshot`
views that readers pin through :class:`SnapshotHandle`.
"""

from repro.core.archive import RolledUpMeasure, TarArchive, WindowMeasure
from repro.core.builder import (
    GenerationConfig,
    MinedWindow,
    TaraBuilder,
    TaraKnowledgeBase,
    WindowTask,
    build_knowledge_base,
    mine_window_task,
)
from repro.core.explorer import ExplorerAnswer, TaraExplorer
from repro.core.incremental import IncrementalTara
from repro.core.lazykb import LazyTaraKnowledgeBase, ShardedArchive
from repro.core.locations import (
    CountLocation,
    Location,
    count_axes,
    group_by_counts,
    group_by_location,
    location_of,
)
from repro.core.persistence import load_knowledge_base, save_knowledge_base
from repro.core.queries import (
    CompareQuery,
    ComparisonResult,
    ContentQuery,
    ExplorerQuery,
    MatchMode,
    MinedRule,
    Recommendation,
    RecommendQuery,
    RollupAnswer,
    RolledUpRule,
    RollupQuery,
    RuleTrajectory,
    TrajectoryQuery,
    WindowDiff,
)
from repro.core.regions import ParameterSetting, StableRegion, WindowSlice
from repro.core.snapshot import DEFAULT_SEGMENT_CAPACITY, Snapshot, SnapshotHandle
from repro.core.rollup import max_support_error, rolled_up_mine
from repro.core.trajectory import TrajectorySummary, summarize_trajectory

__all__ = [
    "CompareQuery",
    "ComparisonResult",
    "ContentQuery",
    "ExplorerAnswer",
    "ExplorerQuery",
    "GenerationConfig",
    "IncrementalTara",
    "LazyTaraKnowledgeBase",
    "Location",
    "MatchMode",
    "MinedRule",
    "MinedWindow",
    "ParameterSetting",
    "Recommendation",
    "RecommendQuery",
    "RolledUpMeasure",
    "RolledUpRule",
    "RollupAnswer",
    "RollupQuery",
    "RuleTrajectory",
    "Snapshot",
    "SnapshotHandle",
    "DEFAULT_SEGMENT_CAPACITY",
    "TrajectoryQuery",
    "StableRegion",
    "ShardedArchive",
    "TarArchive",
    "TaraBuilder",
    "TaraExplorer",
    "TaraKnowledgeBase",
    "TrajectorySummary",
    "WindowDiff",
    "WindowMeasure",
    "WindowSlice",
    "WindowTask",
    "CountLocation",
    "build_knowledge_base",
    "count_axes",
    "mine_window_task",
    "group_by_counts",
    "group_by_location",
    "load_knowledge_base",
    "location_of",
    "save_knowledge_base",
    "max_support_error",
    "rolled_up_mine",
    "summarize_trajectory",
]
