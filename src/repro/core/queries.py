"""Query and result types of the TARA online explorer.

The paper's online phase supports several operation classes (Section
2.1.4/2.5): traditional mining with time specification, rule-trajectory
and parameter-recommendation queries (Q1/Q3), evolving ruleset
comparisons (Q2), content-based exploration (Q5) and trajectory
summarization (Q4).  This module defines the value objects those
operations accept and return; the logic lives in
:mod:`repro.core.explorer`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.archive import RolledUpMeasure, WindowMeasure
from repro.core.regions import ParameterSetting, StableRegion
from repro.data.items import ItemId
from repro.data.periods import PeriodSpec
from repro.mining.rules import Rule, RuleId


class MatchMode(enum.Enum):
    """How a multi-window comparison aggregates per-window differences.

    ``EXACT``  — a rule counts as *differing* only if it differs in
    every requested window (the paper's *exact match* mode).
    ``SINGLE`` — a rule counts as differing if it differs in at least
    one requested window (*single match*).
    """

    EXACT = "exact"
    SINGLE = "single"


# ----------------------------------------------------------------------
# Request types: the unified Q1-Q5 entry points.
#
# Every online operation is described by one frozen request dataclass
# and executed through :meth:`repro.core.explorer.TaraExplorer.execute`.
# The legacy per-operation methods remain as thin shims that build the
# matching request.  Freezing makes requests hashable and safely
# shareable across threads; the serving layer never uses their raw
# float thresholds as cache identity — it canonicalizes each request to
# integer stable-region keys (:mod:`repro.service.keys`).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrajectoryQuery:
    """Q1 request: rules matching *setting* in *anchor_window*, tracked.

    ``spec`` is the set of windows to report values over; ``None`` means
    every window of the knowledge base at execution time (a
    *generation-scoped* default — the answer changes when new windows
    arrive).
    """

    setting: ParameterSetting
    anchor_window: int
    spec: Optional[PeriodSpec] = None


@dataclass(frozen=True)
class CompareQuery:
    """Q2 request: difference of two settings' rulesets over *spec*."""

    first: ParameterSetting
    second: ParameterSetting
    spec: Optional[PeriodSpec] = None
    mode: MatchMode = MatchMode.SINGLE


@dataclass(frozen=True)
class RecommendQuery:
    """Q3 request: the stable region enclosing *setting* in *window*.

    ``window=None`` means the latest window at execution time (a
    generation-scoped default).
    """

    setting: ParameterSetting
    window: Optional[int] = None


@dataclass(frozen=True)
class ContentQuery:
    """Q5 request: valid rules mentioning any of *items*, per window.

    ``items`` is normalized to a sorted, de-duplicated tuple so that two
    requests naming the same item set compare (and hash) equal.
    """

    setting: ParameterSetting
    items: Tuple[ItemId, ...]
    spec: Optional[PeriodSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(sorted(set(self.items))))


@dataclass(frozen=True)
class RollupQuery:
    """Roll-up request: mining over the merged period of *spec*.

    Not region-cacheable: the rolled-up answer thresholds the *merged*
    counts, so two settings inside the same per-window stable region can
    still differ — the serving layer always executes it fresh.
    """

    setting: ParameterSetting
    spec: PeriodSpec


#: Any request the explorer's ``execute`` dispatch accepts.
ExplorerQuery = Union[
    TrajectoryQuery, CompareQuery, RecommendQuery, ContentQuery, RollupQuery
]


@dataclass(frozen=True)
class MinedRule:
    """One rule in a mining answer, with the measures that qualified it."""

    rule_id: RuleId
    rule: Rule
    support: float
    confidence: float


@dataclass(frozen=True)
class RuleTrajectory:
    """Q1 answer element: a rule's parameter values across windows.

    ``measures[w]`` is ``None`` for windows where the rule was not
    archived (below generation thresholds there).
    """

    rule_id: RuleId
    rule: Rule
    # Mapping (not Dict): trajectories are cached frozen and shared
    # across concurrent readers, so the field must stay read-only.
    measures: Mapping[int, Optional[WindowMeasure]]

    def present_windows(self) -> Tuple[int, ...]:
        """Windows (sorted) in which the rule had archived values."""
        return tuple(
            sorted(w for w, measure in self.measures.items() if measure is not None)
        )

    def support_series(self) -> List[float]:
        """Supports over present windows, in window order."""
        return [
            self.measures[w].support  # type: ignore[union-attr]
            for w in self.present_windows()
        ]

    def confidence_series(self) -> List[float]:
        """Confidences over present windows, in window order."""
        return [
            self.measures[w].confidence  # type: ignore[union-attr]
            for w in self.present_windows()
        ]


@dataclass(frozen=True)
class WindowDiff:
    """Per-window difference of two rulesets (Q2 building block)."""

    window: int
    only_first: Tuple[RuleId, ...]
    only_second: Tuple[RuleId, ...]
    common: Tuple[RuleId, ...]


@dataclass(frozen=True)
class ComparisonResult:
    """Q2 answer: differences between two settings over shared periods."""

    first: ParameterSetting
    second: ParameterSetting
    mode: MatchMode
    per_window: Tuple[WindowDiff, ...]
    only_first: Tuple[RuleId, ...]
    only_second: Tuple[RuleId, ...]

    @property
    def difference_size(self) -> int:
        """Total number of rules reported as differing."""
        return len(self.only_first) + len(self.only_second)


@dataclass(frozen=True)
class Recommendation:
    """Q3 answer: the enclosing stable region plus its axis neighbors.

    ``region`` tells the analyst how far each threshold can move without
    changing the answer; each entry of ``neighbors`` describes what
    happens one region further in that direction (key is the direction
    name, e.g. ``"looser_support"``).
    """

    window: int
    setting: ParameterSetting
    region: StableRegion
    # Mapping (not Dict): recommendations are cached frozen and shared
    # across concurrent readers, so the field must stay read-only.
    neighbors: Mapping[str, StableRegion]

    def ruleset_delta(self, direction: str) -> Optional[int]:
        """Ruleset-size change when crossing into *direction*'s region."""
        neighbor = self.neighbors.get(direction)
        if neighbor is None:
            return None
        return neighbor.ruleset_size - self.region.ruleset_size


@dataclass(frozen=True)
class RolledUpRule:
    """A rule qualified over a merged (rolled-up) period."""

    rule_id: RuleId
    rule: Rule
    measure: RolledUpMeasure


@dataclass(frozen=True)
class RollupAnswer:
    """Roll-up mining answer with the paper's approximation guarantee.

    ``certain`` rules satisfy the setting even under the pessimistic
    bounds; ``possible`` rules satisfy it only under the optimistic
    bounds.  When every candidate's archive series covers every
    requested window the two lists coincide and the answer is exact.
    """

    setting: ParameterSetting
    windows: Tuple[int, ...]
    certain: Tuple[RolledUpRule, ...]
    possible: Tuple[RolledUpRule, ...]
    max_support_error: float

    @property
    def is_exact(self) -> bool:
        """True when optimistic and pessimistic answers coincide."""
        certain_ids = {r.rule_id for r in self.certain}
        possible_ids = {r.rule_id for r in self.possible}
        return certain_ids == possible_ids
