"""Figure 6: precision of the top-K MARAS MDAR signals.

Paper setup: MARAS runs on quarterly FAERS extracts from three years;
precision@K (hits against Drugs.com/DrugBank) is averaged over each
year's four quarters.  Here each "year" is a group of four synthetic
quarters with planted ground truth; precision is measured against the
planted reference knowledge base, exactly as defined in Section 2.5.1.

Expected shape: precision well above chance, highest at small K and
decaying as K grows — "relatively more hits in the higher ranked
results, thus proving the effectiveness of our ranking strategy".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import format_time, mean_seconds, report
from repro.datagen import faers_quarter
from repro.maras import (
    MarasAnalyzer,
    MarasConfig,
    precision_at_k,
    recall_of_known,
)

FIGURE = "Figure 6 - Precision@K of top MARAS MDAR signals"

KS = (1, 5, 10, 20, 30, 50)
YEARS = {
    "2013": (101, 102, 103, 104),
    "2014": (201, 202, 203, 204),
    "2015": (301, 302, 303, 304),
}
REPORTS_PER_QUARTER = 4000


@pytest.mark.parametrize("year", sorted(YEARS))
def test_fig06_maras_precision(benchmark, year):
    quarters = [
        faers_quarter(seed=seed, report_count=REPORTS_PER_QUARTER)
        for seed in YEARS[year]
    ]

    def analyze_all():
        curves = []
        recalls = []
        for database, reference, _ in quarters:
            signals = MarasAnalyzer(database, MarasConfig(min_count=5)).signals()
            curves.append(precision_at_k(signals, reference, KS))
            recalls.append(recall_of_known(signals, reference))
        return curves, recalls

    curves, recalls = benchmark.pedantic(
        analyze_all, rounds=1, iterations=1, warmup_rounds=0
    )
    averaged = [
        sum(curve.precisions[i] for curve in curves) / len(curves)
        for i in range(len(KS))
    ]
    series = "  ".join(f"P@{k}={p:.2f}" for k, p in zip(KS, averaged))
    report(
        FIGURE,
        f"year {year} (avg of 4 quarters): {series}  "
        f"recall={sum(recalls) / len(recalls):.2f}  "
        f"[{format_time(mean_seconds(benchmark))} for 4 quarters]",
    )
    # The reproduced claims: far above chance at the top, decaying in K.
    # (P@1 averages only 4 binary outcomes per year, so the decay check
    # anchors at P@5, the first statistically steady point.)
    p_at_5 = averaged[KS.index(5)]
    assert p_at_5 >= 0.5, "P@5 should be high"
    assert p_at_5 >= averaged[-1], "precision should decay with K"
