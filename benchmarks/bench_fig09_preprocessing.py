"""Figure 9: offline preprocessing time, TARA vs H-Mine, stacked by task.

The paper reports, per dataset, the one-time offline cost of each
system broken down by task: frequent-itemset generation (shared by
both), plus TARA's extra rule derivation, archival and EPS index
construction.  The claim to reproduce: "the additional preprocessing
tasks in TARA require no more than ~20% extra time than H-Mine" at
matched thresholds, with itemset generation dominating.

Each benchmark case runs the complete offline phase from scratch
(fresh, uncached objects); the terminal summary prints the per-task
stack the figure plots.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.baselines import HMineOnline
from repro.core import GenerationConfig, TaraBuilder

FIGURE = "Figure 9 - offline preprocessing time by task"

CASES = [
    (dataset, system)
    for dataset in data.DATASETS
    for system in ("TARA", "H-Mine")
]


@pytest.mark.parametrize(
    "dataset,system", CASES, ids=[f"{d}-{s}" for d, s in CASES]
)
def test_fig09_preprocessing(benchmark, dataset, system):
    windows = data.windows(dataset)
    supp, conf = data.THRESHOLDS[dataset]
    holder = {}

    if system == "TARA":

        def build():
            builder = TaraBuilder(GenerationConfig(supp, conf))
            holder["kb"] = builder.build(windows)

    else:

        def build():
            baseline = HMineOnline(windows, supp)
            baseline.preprocess()
            holder["baseline"] = baseline

    benchmark.pedantic(build, rounds=1, iterations=1, warmup_rounds=0)
    total = mean_seconds(benchmark)

    if system == "TARA":
        breakdown = holder["kb"].timer.breakdown()
        stack = "  ".join(
            f"{name.split()[0]}={seconds * 1e3:8.1f}ms"
            for name, seconds in breakdown.items()
        )
        report(
            FIGURE,
            f"{dataset:<8} TARA    total={format_time(total)}  {stack}",
        )
    else:
        report(
            FIGURE,
            f"{dataset:<8} H-Mine  total={format_time(total)}  "
            f"(itemset generation only)",
        )
