"""Figure 11: ruleset-comparison (Q2) time while the 2nd *minconf* varies.

The confidence-axis twin of Figure 10: the first setting is fixed, the
second setting's confidence sweeps, exact-match mode over 4 windows.
Expected shape matches Figures 10's: TARA several orders of magnitude
below every competitor at every point.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import CompareQuery, MatchMode, ParameterSetting
from repro.data import PeriodSpec

FIGURE = "Figure 11 - Q2 comparison time vs 2nd minconf (exact match)"

SYSTEMS = ("TARA", "H-Mine", "PARAS", "DCTAR")
BASELINE_DATASETS = ("retail", "T5k")

CASES = [
    (dataset, system, conf2)
    for dataset in data.DATASETS
    for system in SYSTEMS
    for conf2 in data.CONFIDENCE_SWEEP
    if system == "TARA" or dataset in BASELINE_DATASETS
]


@pytest.mark.parametrize(
    "dataset,system,conf2",
    CASES,
    ids=[f"{d}-{s}-conf2_{v}" for d, s, v in CASES],
)
def test_fig11_compare_vary_confidence(benchmark, dataset, system, conf2):
    supp = data.SUPPORT_SWEEP[dataset][0]
    base_conf = data.FIXED_CONFIDENCE[dataset]
    first = ParameterSetting(supp, base_conf)
    second = ParameterSetting(supp, conf2)
    spec = PeriodSpec.window_range(1, data.BATCHES - 1)

    if system == "TARA":
        explorer = data.tara_explorer(dataset)
        request = CompareQuery(
            first=first, second=second, spec=spec, mode=MatchMode.EXACT
        )
        query = lambda: explorer.execute(request)
        rounds = 3
    else:
        baseline = data.baseline(dataset, system)
        query = lambda: baseline.compare(first, second, spec, MatchMode.EXACT)
        rounds = 1
    benchmark.pedantic(query, rounds=rounds, iterations=1, warmup_rounds=0)
    report(
        FIGURE,
        f"{dataset:<8} {system:<7} minconf2={conf2:<4} "
        f"{format_time(mean_seconds(benchmark))}",
    )
