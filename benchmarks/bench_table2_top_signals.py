"""Table 2: top-5 MDAR signals — Confidence vs Reporting Ratio vs MARAS.

Paper claims reproduced here on a synthetic quarter:

* the confidence and reporting-ratio rankings are dominated by
  *redundant* signals (many near-identical drug/ADR combinations);
* MARAS's top signals are diverse and hit planted interactions;
* the interactions MARAS ranks on top sit far down the baseline
  rankings (the paper's "ranked 2,436th by confidence" observation).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.datagen import faers_quarter
from repro.maras import (
    MarasAnalyzer,
    MarasConfig,
    enumerate_candidate_pool,
    rank_by_confidence,
    rank_by_reporting_ratio,
    rank_of_association,
)

TABLE = "Table 2 - top-5 signals by Confidence / Reporting Ratio / MARAS"


def _diversity(associations) -> int:
    """Distinct drug sets among a ranking prefix (redundancy inverse)."""
    return len({frozenset(a.drugs) for a in associations})


@pytest.mark.parametrize("quarter", ["2015-Q3"])
def test_table2_top_signals(benchmark, quarter):
    database, reference, _ = faers_quarter(seed=353, report_count=4000)

    def rank_all():
        signals = MarasAnalyzer(database, MarasConfig(min_count=5)).signals()
        pool = enumerate_candidate_pool(
            database, min_count=5, max_drugs=3, max_adrs=2
        )
        return (
            signals,
            rank_by_confidence(database, pool=pool),
            rank_by_reporting_ratio(database, pool=pool),
        )

    signals, by_confidence, by_rr = benchmark.pedantic(
        rank_all, rounds=1, iterations=1, warmup_rounds=0
    )

    report(TABLE, f"synthetic quarter {quarter}: top 5 of each method")
    for rank in range(5):
        conf_assoc = by_confidence[rank][0]
        rr_assoc = by_rr[rank][0]
        maras_signal = signals[rank]
        hit = "*" if reference.is_hit(maras_signal.association) else " "
        report(
            TABLE,
            f"  #{rank + 1}  conf: {conf_assoc.format(database):<44} "
            f"RR: {rr_assoc.format(database):<44} "
            f"MARAS{hit}: {maras_signal.association.format(database)}",
        )

    conf_diversity = _diversity([a for a, _ in by_confidence[:5]])
    rr_diversity = _diversity([a for a, _ in by_rr[:5]])
    maras_diversity = _diversity([s.association for s in signals[:5]])
    report(
        TABLE,
        f"  distinct drug sets in the top 5: confidence={conf_diversity}, "
        f"RR={rr_diversity}, MARAS={maras_diversity}",
    )

    buried = []
    for signal in signals[:3]:
        conf_rank = rank_of_association(by_confidence, signal.association)
        rr_rank = rank_of_association(by_rr, signal.association)
        buried.append(
            f"MARAS top signal buried at confidence rank "
            f"{conf_rank if conf_rank else '>pool'} / RR rank "
            f"{rr_rank if rr_rank else '>pool'} (pool {len(by_confidence)})"
        )
    for line in buried:
        report(TABLE, f"  {line}")

    # Reproduced qualitative claims.
    assert maras_diversity >= conf_diversity
    top_hits = sum(1 for s in signals[:5] if reference.is_hit(s.association))
    assert top_hits >= 2, "MARAS top-5 should hit planted interactions"
