"""Figure 12: size of the pregenerated information per system.

Paper series, per dataset: the H-Mine itemset store, the (encoded) TAR
Archive, and the uncompressed rule parameter values the archive's
encoding avoids.  Expected shape: archive > H-Mine store (rules
outnumber itemsets... actually the archive holds *rules per window*
where H-Mine holds *itemsets per window*) but well below the
uncompressed representation, thanks to the delta+varint encoding.

Size measurement is not a timing benchmark; the benchmark wraps the
(cheap) size-accounting call so the case still appears in the timing
table, and the real product — the byte counts — goes to the summary.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import report

FIGURE = "Figure 12 - size of pregenerated information"


def _human(size: int) -> str:
    if size >= 1 << 20:
        return f"{size / (1 << 20):7.2f} MiB"
    if size >= 1 << 10:
        return f"{size / (1 << 10):7.2f} KiB"
    return f"{size:7d} B  "


@pytest.mark.parametrize("dataset", data.DATASETS)
def test_fig12_archive_size(benchmark, dataset):
    knowledge_base = data.knowledge_base(dataset)
    hmine = data.baseline(dataset, "H-Mine")

    def measure():
        return (
            hmine.index_size_bytes(),
            knowledge_base.archive.encoded_size_bytes(),
            knowledge_base.archive.uncompressed_size_bytes(),
        )

    hmine_bytes, archive_bytes, raw_bytes = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    compression = raw_bytes / archive_bytes if archive_bytes else float("inf")
    report(
        FIGURE,
        f"{dataset:<8} H-Mine index {_human(hmine_bytes)}   "
        f"TAR Archive {_human(archive_bytes)}   "
        f"uncompressed {_human(raw_bytes)}   "
        f"(encoding saves {compression:.1f}x; "
        f"{hmine.index_entry_count()} itemset entries vs "
        f"{knowledge_base.archive.entry_count()} rule entries)",
    )
    assert archive_bytes < raw_bytes
