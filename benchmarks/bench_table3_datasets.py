"""Tables 3 & 4: benchmark dataset statistics and index thresholds.

Prints the reproduction's analogue of Table 3 (transactions, unique
items, average transaction length per dataset) next to the paper's
original numbers, and Table 4's generation thresholds.  The benchmark
times dataset generation itself (the one data-dependent cost the other
benches amortize away through caching).
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report

TABLE = "Table 3/4 - datasets and index thresholds"

# The paper's Table 3, for side-by-side context (100retail is the
# 100x-replicated retail dataset).
PAPER_TABLE3 = {
    "retail": (8_816_200, 16_470, 10),
    "T5k": (5_000_000, 23_870, 50),
    "T2k": (2_000_000, 30_551, 100),
    "webdocs": (1_692_082, 5_267_656, 177),
}


@pytest.mark.parametrize("dataset", data.DATASETS)
def test_table3_dataset_statistics(benchmark, dataset):
    # Time generation from a cold cache by calling the underlying
    # generator factory directly (the lru_cache would hide the cost).
    data.database.cache_clear()
    stats = benchmark.pedantic(
        lambda: data.dataset_stats(dataset), rounds=1, iterations=1, warmup_rounds=0
    )
    paper_n, paper_items, paper_len = PAPER_TABLE3[dataset]
    supp, conf = data.THRESHOLDS[dataset]
    report(
        TABLE,
        f"{dataset:<8} ours: n={stats.transactions:>6} items={stats.unique_items:>6} "
        f"avglen={stats.avg_transaction_length:5.1f} | paper: n={paper_n:>9} "
        f"items={paper_items:>9} avglen={paper_len:>3} | thresholds "
        f"(supp={supp}, conf={conf}) | gen "
        f"{format_time(mean_seconds(benchmark))}",
    )
    # The reproduction keeps the paper's *relative* profile.
    assert stats.transactions >= 1000
    if dataset == "webdocs":
        retail_stats = data.dataset_stats("retail")
        assert stats.unique_items > retail_stats.unique_items
        assert (
            stats.avg_transaction_length > retail_stats.avg_transaction_length
        )
