"""Benchmark-suite plumbing: the paper-figure report registry.

Every benchmark records the series points it measured through
:func:`report`; after the run, ``pytest_terminal_summary`` prints each
figure's series in the shape the paper reports them (and the asserted
orders-of-magnitude relationships), so ``pytest benchmarks/
--benchmark-only`` ends with a readable reproduction summary in
addition to pytest-benchmark's timing table.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List

_SERIES: Dict[str, List[str]] = defaultdict(list)


def report(figure: str, line: str) -> None:
    """Record one line of a figure's reproduction output."""
    _SERIES[figure].append(line)


def mean_seconds(benchmark) -> float:
    """Mean measured seconds of a completed ``benchmark`` fixture run.

    Handles both pytest-benchmark stats shapes (the nested ``Metadata``
    object of >=4 and the older mapping protocol).  Only the two errors
    a missing key can raise are caught — anything else is real API
    drift and should fail loudly, not dissolve into NaN.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return math.nan
    inner = getattr(stats, "stats", None)
    if inner is not None and hasattr(inner, "mean"):
        return inner.mean
    try:
        return stats["mean"]
    except (KeyError, TypeError):
        return math.nan


def format_time(seconds: float) -> str:
    """Engineering-friendly time rendering for the summary lines."""
    if math.isnan(seconds):
        return "     n/a"
    if seconds >= 1.0:
        return f"{seconds:7.2f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}us"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SERIES:
        return
    terminalreporter.write_sep("=", "paper figure/table reproduction output")
    for figure in sorted(_SERIES):
        terminalreporter.write_sep("-", figure)
        for line in _SERIES[figure]:
            terminalreporter.write_line(line)
