"""Figure 8: online processing time of Q1/Q3 while *minconf* varies.

Same query mix as Figure 7 with the axes swapped: support fixed at the
dataset's generation threshold, confidence swept.  Expected shape is
identical — the TARA variants stay flat in index time while the
competitors pay per-query derivation/mining costs orders of magnitude
above.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import (
    ContentQuery,
    ParameterSetting,
    RecommendQuery,
    TrajectoryQuery,
)
from repro.data import PeriodSpec

FIGURE = "Figure 8 - Q1/Q3 time vs minconf (fixed minsupp)"

TARA_SYSTEMS = ("TARA", "TARA-S", "TARA-R")
BASELINE_SYSTEMS = ("H-Mine", "PARAS", "DCTAR")
BASELINE_DATASETS = ("retail", "T5k")

CASES = [
    (dataset, system, conf)
    for dataset in data.DATASETS
    for system in TARA_SYSTEMS + BASELINE_SYSTEMS
    for conf in data.CONFIDENCE_SWEEP
    if system in TARA_SYSTEMS or dataset in BASELINE_DATASETS
]


def _query(dataset: str, system: str, setting: ParameterSetting):
    anchor = data.BATCHES - 1
    spec = PeriodSpec.window_range(0, data.BATCHES - 1)
    if system == "TARA":
        explorer = data.tara_explorer(dataset)
        request = TrajectoryQuery(setting=setting, anchor_window=anchor, spec=spec)
        return lambda: explorer.execute(request)
    if system == "TARA-S":
        explorer = data.tara_explorer(dataset, item_index=True)
        items = tuple(sorted(data.database(dataset).unique_items())[:3])
        request = ContentQuery(setting=setting, items=items, spec=spec)
        return lambda: explorer.execute(request)
    if system == "TARA-R":
        explorer = data.tara_explorer(dataset)
        request = RecommendQuery(setting=setting, window=anchor)
        return lambda: explorer.execute(request)
    baseline = data.baseline(dataset, system)
    return lambda: baseline.trajectory(setting, anchor, spec)


@pytest.mark.parametrize(
    "dataset,system,conf",
    CASES,
    ids=[f"{d}-{s}-conf{v}" for d, s, v in CASES],
)
def test_fig08_online_vary_confidence(benchmark, dataset, system, conf):
    supp = data.SUPPORT_SWEEP[dataset][0]
    setting = ParameterSetting(supp, conf)
    query = _query(dataset, system, setting)
    rounds = 1 if system in ("DCTAR", "PARAS") else 3
    benchmark.pedantic(query, rounds=rounds, iterations=1, warmup_rounds=0)
    report(
        FIGURE,
        f"{dataset:<8} {system:<7} minconf={conf:<4} "
        f"{format_time(mean_seconds(benchmark))}",
    )
