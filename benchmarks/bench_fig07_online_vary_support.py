"""Figure 7: online processing time of Q1/Q3 while *minsupp* varies.

Paper series: for each dataset, the time to answer a rule-trajectory
query (Q1: rules matching a setting in the latest window, with their
parameter values across the previous windows) as the minimum support
varies at fixed confidence — for TARA, TARA-S, TARA-R (Q3) and the
three competitors.  Expected shape: TARA variants answer in
sub-millisecond index time, H-Mine pays query-time rule derivation,
DCTAR and PARAS pay full re-mining — orders of magnitude apart.

The baselines run on two datasets (the paper's four) to keep the suite
inside a laptop-minutes budget; TARA runs on all four.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import (
    ContentQuery,
    ParameterSetting,
    RecommendQuery,
    TrajectoryQuery,
)
from repro.data import PeriodSpec

FIGURE = "Figure 7 - Q1/Q3 time vs minsupp (fixed minconf)"

TARA_SYSTEMS = ("TARA", "TARA-S", "TARA-R")
BASELINE_SYSTEMS = ("H-Mine", "PARAS", "DCTAR")
BASELINE_DATASETS = ("retail", "T5k")

CASES = [
    (dataset, system, supp)
    for dataset in data.DATASETS
    for system in TARA_SYSTEMS + BASELINE_SYSTEMS
    for supp in data.SUPPORT_SWEEP[dataset]
    if system in TARA_SYSTEMS or dataset in BASELINE_DATASETS
]


def _query(dataset: str, system: str, setting: ParameterSetting):
    anchor = data.BATCHES - 1
    spec = PeriodSpec.window_range(0, data.BATCHES - 1)
    if system == "TARA":
        explorer = data.tara_explorer(dataset)
        request = TrajectoryQuery(setting=setting, anchor_window=anchor, spec=spec)
        return lambda: explorer.execute(request)
    if system == "TARA-S":
        explorer = data.tara_explorer(dataset, item_index=True)
        items = tuple(sorted(data.database(dataset).unique_items())[:3])
        request = ContentQuery(setting=setting, items=items, spec=spec)
        return lambda: explorer.execute(request)
    if system == "TARA-R":
        explorer = data.tara_explorer(dataset)
        request = RecommendQuery(setting=setting, window=anchor)
        return lambda: explorer.execute(request)
    baseline = data.baseline(dataset, system)
    return lambda: baseline.trajectory(setting, anchor, spec)


@pytest.mark.parametrize(
    "dataset,system,supp",
    CASES,
    ids=[f"{d}-{s}-supp{v}" for d, s, v in CASES],
)
def test_fig07_online_vary_support(benchmark, dataset, system, supp):
    setting = ParameterSetting(supp, data.FIXED_CONFIDENCE[dataset])
    query = _query(dataset, system, setting)
    rounds = 1 if system in ("DCTAR", "PARAS") else 3
    benchmark.pedantic(query, rounds=rounds, iterations=1, warmup_rounds=0)
    report(
        FIGURE,
        f"{dataset:<8} {system:<7} minsupp={supp:<6} "
        f"{format_time(mean_seconds(benchmark))}",
    )
