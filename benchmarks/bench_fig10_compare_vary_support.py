"""Figure 10: ruleset-comparison (Q2) time while the 2nd *minsupp* varies.

Paper setup: Q2 in *exact match* mode returns the differences of two
parameter settings across 4 windows; the first setting is fixed, the
second setting's support sweeps upward, so the rulesets diverge more
and more.  Expected shape: TARA answers from the index in
sub-millisecond time that grows mildly with the deviation; the
competitors re-derive or re-mine the union ruleset per window and sit
orders of magnitude above.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import CompareQuery, MatchMode, ParameterSetting
from repro.data import PeriodSpec

FIGURE = "Figure 10 - Q2 comparison time vs 2nd minsupp (exact match)"

SYSTEMS = ("TARA", "H-Mine", "PARAS", "DCTAR")
BASELINE_DATASETS = ("retail", "T5k")

CASES = [
    (dataset, system, supp2)
    for dataset in data.DATASETS
    for system in SYSTEMS
    for supp2 in data.SUPPORT_SWEEP[dataset]
    if system == "TARA" or dataset in BASELINE_DATASETS
]


@pytest.mark.parametrize(
    "dataset,system,supp2",
    CASES,
    ids=[f"{d}-{s}-supp2_{v}" for d, s, v in CASES],
)
def test_fig10_compare_vary_support(benchmark, dataset, system, supp2):
    base_supp = data.SUPPORT_SWEEP[dataset][0]
    conf = data.FIXED_CONFIDENCE[dataset]
    first = ParameterSetting(base_supp, conf)
    second = ParameterSetting(supp2, conf)
    spec = PeriodSpec.window_range(1, data.BATCHES - 1)  # 4 windows

    if system == "TARA":
        explorer = data.tara_explorer(dataset)
        request = CompareQuery(
            first=first, second=second, spec=spec, mode=MatchMode.EXACT
        )
        query = lambda: explorer.execute(request)
        rounds = 3
    else:
        baseline = data.baseline(dataset, system)
        query = lambda: baseline.compare(first, second, spec, MatchMode.EXACT)
        rounds = 1
    benchmark.pedantic(query, rounds=rounds, iterations=1, warmup_rounds=0)
    report(
        FIGURE,
        f"{dataset:<8} {system:<7} minsupp2={supp2:<6} "
        f"{format_time(mean_seconds(benchmark))}",
    )
