"""Ablation: roll-up answer quality vs generation thresholds.

Keeping *counts* in the archive makes roll-ups exact for fully-archived
rules; rules missing from some windows fall into the certain/possible
gap bounded by the generation thresholds.  This ablation sweeps the
generation support threshold and reports how the gap and the
theoretical bound move — the storage/exactness trade-off DESIGN.md
calls out (a lower threshold archives more, shrinking the gap, at
higher offline cost).
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import GenerationConfig, ParameterSetting, build_knowledge_base
from repro.core.rollup import rolled_up_mine
from repro.data import PeriodSpec

ABLATION = "Ablation - roll-up exactness vs generation support threshold"

GENERATION_SUPPORTS = (0.005, 0.01, 0.02)


@pytest.mark.parametrize("generation_support", GENERATION_SUPPORTS)
def test_ablation_rollup_threshold(benchmark, generation_support):
    windows = data.windows("retail")
    config = GenerationConfig(generation_support, 0.1)
    knowledge_base = build_knowledge_base(windows, config)
    setting = ParameterSetting(0.025, 0.4)
    spec = PeriodSpec.window_range(0, data.BATCHES - 1)

    answer = benchmark.pedantic(
        lambda: rolled_up_mine(knowledge_base, setting, spec),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    certain = len(answer.certain)
    possible = len(answer.possible)
    gap = possible - certain
    report(
        ABLATION,
        f"gen_supp={generation_support:<6} certain={certain:<5} "
        f"possible={possible:<5} gap={gap:<5} "
        f"bound={answer.max_support_error:.4f} "
        f"archive={knowledge_base.archive.encoded_size_bytes() / 1024:.0f}KiB "
        f"query={format_time(mean_seconds(benchmark))}",
    )
    assert certain <= possible
