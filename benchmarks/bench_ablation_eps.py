"""Ablation: EPS ruleset collection — staircase scan vs domination BFS.

DESIGN.md calls out the query-time strategy inside a window slice: the
production path scans only the occupied locations dominated by the cut
(staircase scan); the paper-literal alternative walks the domination
grid breadth-first, visiting empty grid cells too.  Both provably return
the same ruleset (property-tested); this bench quantifies the gap.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import ParameterSetting

ABLATION = "Ablation - EPS collection: staircase scan vs domination-grid BFS"

CASES = [
    (dataset, strategy)
    for dataset in ("retail", "T5k")
    for strategy in ("scan", "bfs")
]


@pytest.mark.parametrize(
    "dataset,strategy", CASES, ids=[f"{d}-{s}" for d, s in CASES]
)
def test_ablation_eps_collection(benchmark, dataset, strategy):
    knowledge_base = data.knowledge_base(dataset)
    window_slice = knowledge_base.slice(data.BATCHES - 1)
    setting = ParameterSetting(
        data.SUPPORT_SWEEP[dataset][0], data.FIXED_CONFIDENCE[dataset]
    )
    collect = (
        window_slice.collect if strategy == "scan" else window_slice.collect_bfs
    )
    result = benchmark.pedantic(
        lambda: collect(setting), rounds=5, iterations=1, warmup_rounds=1
    )
    report(
        ABLATION,
        f"{dataset:<8} {strategy:<4} {format_time(mean_seconds(benchmark))} "
        f"({len(result)} rules)",
    )
    # Same answer either way.
    assert window_slice.collect(setting) == window_slice.collect_bfs(setting)
