"""Ablation: contrast-measure variants as MDAR ranking functions.

Section 2.3.5 develops the final contrast score in steps —
``contrast_max`` (Formula 5), ``contrast_avg`` (6), ``contrast_cv`` (7)
and the final level-weighted score (9).  This ablation ranks the same
learned associations by each variant and scores the rankings with
average precision against the planted ground truth, quantifying what
each refinement buys.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import format_time, mean_seconds, report
from repro.datagen import faers_quarter
from repro.maras import (
    MarasAnalyzer,
    MarasConfig,
    average_precision,
    contrast_avg,
    contrast_cv,
    contrast_max,
    contrast_score,
    precision_at_k,
)
from repro.maras.signals import Signal

ABLATION = "Ablation - contrast variants (ranking quality)"

VARIANTS = {
    "contrast_max": lambda cluster: contrast_max(cluster),
    "contrast_avg": lambda cluster: contrast_avg(cluster),
    "contrast_cv": lambda cluster: contrast_cv(cluster),
    "final_score": lambda cluster: contrast_score(cluster),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation_contrast_variant(benchmark, variant):
    database, reference, _ = faers_quarter(seed=97, report_count=4000)
    analyzer = MarasAnalyzer(database, MarasConfig(min_count=5))
    scorer = VARIANTS[variant]

    def rank():
        signals = []
        for learned in analyzer.learned_associations():
            _, cluster = analyzer.score(learned.association)
            value = scorer(cluster)
            if value <= 0:
                continue
            signals.append(
                Signal(
                    association=learned.association,
                    kind=learned.kind,
                    score=value,
                    confidence=learned.confidence,
                    count=learned.count,
                    cluster=cluster,
                )
            )
        signals.sort(key=lambda s: (-s.score, -s.confidence, -s.count))
        return signals

    signals = benchmark.pedantic(rank, rounds=1, iterations=1, warmup_rounds=0)
    curve = precision_at_k(signals, reference, [10, 30])
    ap = average_precision(signals, reference)
    report(
        ABLATION,
        f"{variant:<13} P@10={curve.at(10):.2f}  P@30={curve.at(30):.2f}  "
        f"AP={ap:.3f}  ({len(signals)} positive signals, "
        f"{format_time(mean_seconds(benchmark))})",
    )
