"""Shared benchmark datasets, thresholds, and prebuilt systems.

Mirrors the paper's experimental setup (Section 2.5.2) at laptop scale:

* **Table 3 analogue** — four datasets with the same *relative* profile:
  ``retail`` (many short baskets), ``T5k`` / ``T2k`` (Quest synthetics
  with longer transactions and larger item universes), ``webdocs``
  (longest transactions, largest vocabulary).  Every dataset is split
  into 5 equal batches to form the evolving source.
* **Table 4 analogue** — per-dataset generation thresholds chosen, like
  the paper's, so each window pregenerates a substantial but tractable
  ruleset.

Everything is built once per benchmark session and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.baselines import BaselineSystem, Dctar, HMineOnline, Paras
from repro.core import (
    GenerationConfig,
    TaraExplorer,
    TaraKnowledgeBase,
    build_knowledge_base,
)
from repro.data import TransactionDatabase, WindowedDatabase
from repro.datagen import (
    quest_t2k_scaled,
    quest_t5k_scaled,
    retail_dataset,
    webdocs_dataset,
)

BATCHES = 5

#: Table 4 analogue: per-dataset generation thresholds (supp, conf).
THRESHOLDS: Dict[str, Tuple[float, float]] = {
    "retail": (0.004, 0.10),
    "T5k": (0.010, 0.20),
    "T2k": (0.025, 0.25),
    "webdocs": (0.080, 0.30),
}

#: Query-time support values per dataset (the Figure 7/10 x-axes); all
#: lie above the generation thresholds.
SUPPORT_SWEEP: Dict[str, Tuple[float, ...]] = {
    "retail": (0.008, 0.012, 0.02),
    "T5k": (0.02, 0.03, 0.04),
    "T2k": (0.04, 0.05, 0.06),
    "webdocs": (0.11, 0.125, 0.14),
}

#: Query-time confidence values (Figure 8/11 x-axes).
CONFIDENCE_SWEEP: Tuple[float, ...] = (0.3, 0.45, 0.6)

#: Fixed confidence used while support varies (per dataset).
FIXED_CONFIDENCE: Dict[str, float] = {
    "retail": 0.4,
    "T5k": 0.3,
    "T2k": 0.3,
    "webdocs": 0.4,
}

DATASETS: Tuple[str, ...] = tuple(THRESHOLDS)


@lru_cache(maxsize=None)
def database(name: str) -> TransactionDatabase:
    """The raw transaction database for one named dataset."""
    if name == "retail":
        return retail_dataset(transaction_count=5000, seed=11)
    if name == "T5k":
        return quest_t5k_scaled(scale=0.0006, seed=5)
    if name == "T2k":
        return quest_t2k_scaled(scale=0.00075, seed=6)
    if name == "webdocs":
        return webdocs_dataset(document_count=1500, seed=23)
    raise KeyError(f"unknown benchmark dataset {name!r}")


@lru_cache(maxsize=None)
def windows(name: str) -> WindowedDatabase:
    """The dataset split into the standard 5 evolving batches."""
    return WindowedDatabase.partition_by_count(database(name), BATCHES)


@lru_cache(maxsize=None)
def knowledge_base(name: str, item_index: bool = False) -> TaraKnowledgeBase:
    """The TARA knowledge base for one dataset (offline phase, cached)."""
    supp, conf = THRESHOLDS[name]
    config = GenerationConfig(supp, conf, build_item_index=item_index)
    return build_knowledge_base(windows(name), config)


@lru_cache(maxsize=None)
def tara_explorer(name: str, item_index: bool = False) -> TaraExplorer:
    """The online explorer over the cached knowledge base."""
    return TaraExplorer(knowledge_base(name, item_index))


@lru_cache(maxsize=None)
def baseline(name: str, system: str) -> BaselineSystem:
    """A preprocessed competitor system for one dataset."""
    supp, conf = THRESHOLDS[name]
    if system == "DCTAR":
        built: BaselineSystem = Dctar(windows(name))
    elif system == "H-Mine":
        built = HMineOnline(windows(name), supp)
    elif system == "PARAS":
        built = Paras(windows(name), supp, conf)
    else:
        raise KeyError(f"unknown baseline {system!r}")
    built.preprocess()
    return built


@dataclass(frozen=True)
class DatasetStats:
    """One Table 3 row."""

    name: str
    transactions: int
    unique_items: int
    avg_transaction_length: float


def dataset_stats(name: str) -> DatasetStats:
    """Compute the Table 3 row for one dataset."""
    db = database(name)
    return DatasetStats(
        name=name,
        transactions=len(db),
        unique_items=len(db.unique_items()),
        avg_transaction_length=db.average_transaction_length(),
    )
