"""Ablation: itemset-miner choice inside the Association Generator.

The builder accepts Apriori, FP-Growth or H-Mine as its mining engine;
all three produce identical knowledge (tested).  This bench shows their
cost profile per dataset — the reason FP-Growth is the default and the
reason the paper's H-Mine baseline is competitive on preprocessing.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.mining import MINERS

ABLATION = "Ablation - itemset miners (per-window mining cost)"

CASES = [
    (dataset, miner)
    for dataset in ("retail", "T5k", "webdocs")
    for miner in sorted(MINERS)
]


@pytest.mark.parametrize(
    "dataset,miner", CASES, ids=[f"{d}-{m}" for d, m in CASES]
)
def test_ablation_miner(benchmark, dataset, miner):
    transactions = data.windows(dataset).window(data.BATCHES - 1)
    supp, _ = data.THRESHOLDS[dataset]
    mine = MINERS[miner]
    result = benchmark.pedantic(
        lambda: mine(transactions, supp), rounds=2, iterations=1, warmup_rounds=0
    )
    report(
        ABLATION,
        f"{dataset:<8} {miner:<9} {format_time(mean_seconds(benchmark))} "
        f"({len(result)} frequent itemsets)",
    )
