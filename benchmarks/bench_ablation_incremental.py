"""Ablation: incremental window append vs full rebuild (iPARAS claim).

When a new batch arrives, the incremental builder mines and indexes
only that batch; a PARAS-style system rebuilds its single-window index,
and a naive evolving deployment would rebuild everything.  This bench
measures the cost of absorbing ONE new batch under each maintenance
strategy — the gap grows linearly with history length, which is the
iPARAS speedup the dissertation cites.
"""

from __future__ import annotations

import pytest

from benchmarks import datasets as data
from benchmarks.conftest import format_time, mean_seconds, report
from repro.core import GenerationConfig, IncrementalTara, build_knowledge_base

ABLATION = "Ablation - absorbing one new batch: incremental vs rebuild"

STRATEGIES = ("incremental", "rebuild-all")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_incremental_append(benchmark, strategy):
    dataset = "retail"
    windows = data.windows(dataset)
    supp, conf = data.THRESHOLDS[dataset]
    config = GenerationConfig(supp, conf)
    history = [windows.window(i) for i in range(data.BATCHES - 1)]
    new_batch = windows.window(data.BATCHES - 1)

    if strategy == "incremental":
        # History absorbed once outside the timer; the measured cost is
        # the new batch only.
        incremental = IncrementalTara(config)
        incremental.publish(history)
        state = {"tara": incremental, "appended": False}

        def absorb():
            if state["appended"]:
                # Re-publishing the same window is illegal; rebuild the
                # prefix outside any reasonable timing impact is not an
                # option, so subsequent rounds re-create the incremental
                # state lazily. rounds=1 avoids this path entirely.
                fresh = IncrementalTara(config)
                fresh.publish(history)
                state["tara"] = fresh
            state["tara"].publish([new_batch])
            state["appended"] = True

        benchmark.pedantic(absorb, rounds=1, iterations=1, warmup_rounds=0)
    else:

        def rebuild():
            build_knowledge_base(windows, config)

        benchmark.pedantic(rebuild, rounds=1, iterations=1, warmup_rounds=0)

    report(
        ABLATION,
        f"{dataset:<8} {strategy:<12} {format_time(mean_seconds(benchmark))} "
        f"per arriving batch (history of {len(history)} windows)",
    )
