#!/usr/bin/env python3
"""Evolving data: incremental knowledge-base maintenance (iPARAS-style).

Batches of transactions arrive over time; each ``publish`` turns a
batch into a new basic window and installs a fresh immutable snapshot.
The publisher mines and indexes *only the new batch* — all previous
windows' archive series and EPS slices are reused — and readers keep
querying the previous snapshot until the new one is installed.  The
final state is bit-identical to a from-scratch build over the same
data, which the script verifies.

Run:  python examples/streaming_updates.py
"""

import time

from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    build_knowledge_base,
)
from repro.data import WindowedDatabase
from repro.datagen import retail_dataset


def main() -> None:
    database = retail_dataset(transaction_count=5000, seed=29)
    windows = WindowedDatabase.partition_by_count(database, 5)
    config = GenerationConfig(min_support=0.01, min_confidence=0.2)
    setting = ParameterSetting(0.02, 0.4)

    incremental = IncrementalTara(config)
    print("appending batches as they 'arrive':")
    for index in range(windows.window_count):
        batch = windows.window(index)
        start = time.perf_counter()
        snapshot = incremental.publish([batch])
        elapsed = (time.perf_counter() - start) * 1e3
        explorer = snapshot.explorer()
        latest_rules = explorer.ruleset(setting, index)
        print(
            f"  batch {index}: {len(batch)} transactions ingested in "
            f"{elapsed:7.1f} ms -> {len(latest_rules)} rules valid at "
            f"(supp={setting.min_support}, conf={setting.min_confidence})"
        )

    # Verify equivalence with the one-shot batch build.
    batch_kb = build_knowledge_base(windows, config)
    incremental_kb = incremental.knowledge_base
    matching = 0
    for window in range(windows.window_count):
        inc_rules = {
            (incremental_kb.catalog.get(r).antecedent,
             incremental_kb.catalog.get(r).consequent)
            for r in incremental_kb.slice(window).collect(setting)
        }
        batch_rules = {
            (batch_kb.catalog.get(r).antecedent,
             batch_kb.catalog.get(r).consequent)
            for r in batch_kb.slice(window).collect(setting)
        }
        assert inc_rules == batch_rules, f"window {window} diverged"
        matching += len(inc_rules)
    print(
        f"\nincremental state verified against the from-scratch build: "
        f"{matching} rule answers identical across "
        f"{windows.window_count} windows"
    )

    # The incremental advantage: per-batch cost stays flat because only
    # the new window is processed.
    per_window = incremental_kb.timer.totals["frequent itemset generation"]
    print(
        f"total itemset-mining time spent incrementally: "
        f"{per_window * 1e3:.1f} ms across "
        f"{incremental_kb.timer.counts['frequent itemset generation']} batches"
    )


if __name__ == "__main__":
    main()
