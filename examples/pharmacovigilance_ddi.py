#!/usr/bin/env python3
"""Pharmacovigilance: multi-drug adverse-reaction signals with MARAS.

Reproduces the paper's drug-safety workflow on a synthetic FAERS
quarter with planted, ground-truth drug-drug interactions:

1. learn the non-spurious Drug-ADR associations (closed = explicit ∪
   implicit, Lemma 1);
2. score each multi-drug association by the contrast measure;
3. report the top signals with their evidence, next to the confidence
   and reporting-ratio baselines (the Table 2 comparison);
4. evaluate precision@K against the planted reference knowledge base
   (the Figure 6 curve).

Run:  python examples/pharmacovigilance_ddi.py
"""

from repro.datagen import faers_quarter
from repro.maras import (
    MarasAnalyzer,
    MarasConfig,
    precision_at_k,
    rank_by_confidence,
    rank_by_reporting_ratio,
    rank_of_association,
    recall_of_known,
)


def main() -> None:
    database, reference, truth = faers_quarter(seed=97, report_count=6000)
    print(
        f"synthetic FAERS quarter: {len(database)} reports, "
        f"{database.drug_count} drugs, {database.adr_count} ADRs, "
        f"{len(reference)} planted interactions\n"
    )

    analyzer = MarasAnalyzer(database, MarasConfig(min_count=5))
    signals = analyzer.signals()
    print(f"MARAS produced {len(signals)} ranked MDAR signals\n")

    print("== top 5 MARAS signals ==")
    for rank, signal in enumerate(signals[:5], start=1):
        hit = "known DDI" if reference.is_hit(signal.association) else "novel"
        print(f"  #{rank} [{hit:9}] {signal.describe(database)}")
        worst = max(signal.cluster.contextual_confidences())
        print(f"       strongest contextual confidence: {worst:.3f}")

    # -- baseline comparison (Table 2's point) ---------------------------
    print("\n== where the baselines rank MARAS's top signals ==")
    pool = None
    from repro.maras import enumerate_candidate_pool

    pool = enumerate_candidate_pool(database, min_count=5, max_drugs=3, max_adrs=2)
    by_confidence = rank_by_confidence(database, pool=pool)
    by_rr = rank_by_reporting_ratio(database, pool=pool)
    for rank, signal in enumerate(signals[:3], start=1):
        confidence_rank = rank_of_association(by_confidence, signal.association)
        rr_rank = rank_of_association(by_rr, signal.association)
        print(
            f"  MARAS #{rank}: confidence rank "
            f"{confidence_rank if confidence_rank else '>pool'}, "
            f"reporting-ratio rank {rr_rank if rr_rank else '>pool'} "
            f"(pool of {len(pool)})"
        )

    # -- case-study dossier (Section 2.5.1 style) -------------------------
    from repro.maras.case_studies import build_case_study

    print("\n== evidence dossier for the top signal ==")
    print(build_case_study(signals[0], database, reference).render())

    # -- precision@K (Figure 6) ------------------------------------------
    ks = [1, 5, 10, 20, 30, 50]
    curve = precision_at_k(signals, reference, ks)
    print("\n== precision@K against the reference knowledge base ==")
    for k, precision in zip(curve.ks, curve.precisions):
        bar = "#" * int(precision * 40)
        print(f"  P@{k:<3} {precision:5.2f}  {bar}")
    print(
        f"\nrecall of planted interactions: "
        f"{recall_of_known(signals, reference):.2f}"
    )


if __name__ == "__main__":
    main()
