#!/usr/bin/env python3
"""Quarter-over-quarter MDAR surveillance (MeDIAR-style tracking).

FAERS arrives quarterly; the reviewer's question is what is *emerging*.
This example feeds four synthetic quarters to the temporal tracker and
prints, per quarter, the change digest (new / strengthened / vanished
signals), then the signals persisting across every quarter — the
strongest evidence an SRS can produce — and the freshly emerged ones.

Run:  python examples/temporal_signals.py
"""

from repro.datagen import faers_quarter
from repro.maras import MarasConfig, TemporalSignalTracker


def main() -> None:
    tracker = TemporalSignalTracker(
        MarasConfig(min_count=5), top_k=40, strengthen_threshold=0.02
    )
    quarters = [(f"Q{i + 1}", 500 + i) for i in range(4)]

    latest_database = None
    for label, seed in quarters:
        database, reference, _ = faers_quarter(seed=seed, report_count=3000)
        latest_database = database
        digest = tracker.add_period(database)
        print(
            f"{label}: +{len(digest.new_signals)} new  "
            f"^{len(digest.strengthened)} strengthened  "
            f"v{len(digest.weakened)} weakened  "
            f"-{len(digest.vanished)} vanished"
        )

    print("\n== signals present in every quarter ==")
    for trajectory in tracker.persistent_signals()[:5]:
        ranks = " -> ".join(str(s.rank) for s in trajectory.snapshots)
        print(
            f"  {trajectory.association.format(latest_database):<48} "
            f"ranks {ranks}  score {trajectory.latest.score:.3f}"
        )

    print("\n== signals that first appeared in the latest quarter ==")
    for trajectory in tracker.emerging_signals(last_periods=1)[:5]:
        print(
            f"  {trajectory.association.format(latest_database):<48} "
            f"rank {trajectory.latest.rank}  score {trajectory.latest.score:.3f}"
        )


if __name__ == "__main__":
    main()
