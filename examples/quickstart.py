#!/usr/bin/env python3
"""Quickstart: build a TARA knowledge base and explore it interactively.

Walks the full offline -> online pipeline of the paper on a synthetic
retail dataset:

1. generate timestamped baskets and split them into tumbling windows;
2. run the offline phase (mine -> derive -> archive -> EPS index);
3. answer a traditional mining request from the index;
4. ask for a parameter recommendation (the enclosing stable region);
5. compare two parameter settings across all windows;
6. follow one rule's trajectory through time.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CompareQuery,
    GenerationConfig,
    MatchMode,
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    TrajectoryQuery,
    build_knowledge_base,
)
from repro.data import WindowedDatabase
from repro.datagen import retail_dataset


def main() -> None:
    # -- 1. data ------------------------------------------------------
    database = retail_dataset(transaction_count=4000, seed=11)
    windows = WindowedDatabase.partition_by_count(database, 5)
    print(
        f"dataset: {len(database)} transactions, "
        f"{len(database.unique_items())} items, "
        f"{windows.window_count} windows"
    )

    # -- 2. offline phase ----------------------------------------------
    config = GenerationConfig(min_support=0.005, min_confidence=0.1)
    knowledge_base = build_knowledge_base(windows, config)
    print(
        f"knowledge base: {len(knowledge_base.catalog)} distinct rules, "
        f"{knowledge_base.archive.entry_count()} archived entries "
        f"({knowledge_base.archive.encoded_size_bytes()} bytes encoded)"
    )
    print(knowledge_base.timer.report("offline phase breakdown"))

    # -- 3. traditional mining request ----------------------------------
    explorer = TaraExplorer(knowledge_base)
    setting = ParameterSetting(min_support=0.01, min_confidence=0.4)
    latest = windows.window_count - 1
    mined = explorer.mine(setting)[latest]
    print(f"\nmining at (supp={setting.min_support}, conf={setting.min_confidence}),"
          f" window {latest}: {len(mined)} rules; top 5 by confidence:")
    for rule in sorted(mined, key=lambda m: -m.confidence)[:5]:
        print(
            f"  {rule.rule.format():<28} supp={rule.support:.4f} "
            f"conf={rule.confidence:.3f}"
        )

    # -- 4. parameter recommendation (Q3) --------------------------------
    recommendation = explorer.execute(RecommendQuery(setting=setting))
    region = recommendation.region
    print(
        f"\nstable region around the setting: any (supp, conf) in "
        f"({float(region.support_floor):.4f}, {region.cut.support_float:.4f}] x "
        f"({float(region.confidence_floor):.4f}, {region.cut.confidence_float:.4f}] "
        f"yields the same {region.ruleset_size} rules"
    )
    for direction in ("looser_support", "tighter_support"):
        delta = recommendation.ruleset_delta(direction)
        if delta is not None:
            print(f"  {direction:<18} changes the ruleset by {delta:+d} rules")

    # -- 5. evolving ruleset comparison (Q2) ------------------------------
    tighter = ParameterSetting(min_support=0.02, min_confidence=0.4)
    comparison = explorer.execute(
        CompareQuery(first=setting, second=tighter, mode=MatchMode.SINGLE)
    )
    print(
        f"\ncomparing against (supp={tighter.min_support}, "
        f"conf={tighter.min_confidence}): {comparison.difference_size} rules "
        f"differ in at least one window"
    )

    # -- 6. rule trajectory (Q1) -----------------------------------------
    trajectories = explorer.execute(
        TrajectoryQuery(setting=setting, anchor_window=latest)
    )
    trajectory = max(
        trajectories, key=lambda t: len(t.present_windows())
    )
    print(f"\ntrajectory of {trajectory.rule.format()}:")
    for window, measure in sorted(trajectory.measures.items()):
        if measure is None:
            print(f"  window {window}: below generation thresholds")
        else:
            print(
                f"  window {window}: supp={measure.support:.4f} "
                f"conf={measure.confidence:.3f}"
            )
    summary = explorer.summarize(trajectory.rule_id)
    print(
        f"  coverage={summary.coverage:.2f} stability={summary.stability:.3f} "
        f"trend={summary.trend:+.4f}"
    )

    # -- 7. the rule-centric panorama -------------------------------------
    from repro.core.panorama import render_slice, render_trajectory

    print("\n" + render_slice(knowledge_base.slice(latest), width=24, height=8))
    spark = render_trajectory(
        [trajectory.measures[w] for w in sorted(trajectory.measures)]
    )
    print(f"\nconfidence sparkline of {trajectory.rule.format()}: {spark}")


if __name__ == "__main__":
    main()
