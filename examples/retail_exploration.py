#!/usr/bin/env python3
"""Retail scenario: seasonal drift, roll-ups, and content exploration.

The paper's motivating retail story: seasonal products gain and lose
popularity, bundles appear in certain phases, and the analyst wants to
(a) spot rules that exist only in certain periods, (b) find the most
stable and the fastest-growing rules, (c) roll daily windows up to a
coarser granularity, and (d) focus on rules about specific products —
all interactively, from the pregenerated knowledge base.

Run:  python examples/retail_exploration.py
"""

from repro.core import (
    ContentQuery,
    GenerationConfig,
    ParameterSetting,
    RollupQuery,
    TaraExplorer,
    build_knowledge_base,
)
from repro.data import PeriodSpec, WindowedDatabase
from repro.datagen import RetailParameters, generate_retail


def main() -> None:
    params = RetailParameters(
        transaction_count=5000, item_count=300, phases=5, seed=19
    )
    database, truth = generate_retail(params)
    windows = WindowedDatabase.partition_by_count(database, params.phases)
    config = GenerationConfig(
        min_support=0.01, min_confidence=0.2, build_item_index=True
    )
    knowledge_base = build_knowledge_base(windows, config)
    explorer = TaraExplorer(knowledge_base)
    setting = ParameterSetting(0.015, 0.4)
    print(
        f"{len(database)} baskets, {windows.window_count} windows, "
        f"{len(knowledge_base.catalog)} rules in the catalog\n"
    )

    # -- (a) rules that exist only in some periods -----------------------
    print("== rules present in few windows (period-specific patterns) ==")
    period_specific = [
        summary
        for summary in (
            explorer.summarize(rule_id)
            for rule_id in explorer.ruleset(setting, windows.window_count - 1)
        )
        if summary.windows_present <= 2
    ]
    print(f"{len(period_specific)} of the latest window's rules appear in "
          f"<= 2 of {windows.window_count} windows")
    for summary in period_specific[:3]:
        rule = knowledge_base.catalog.get(summary.rule_id)
        print(f"  {rule.format():<30} coverage={summary.coverage:.2f}")

    # -- (b) most stable / fastest-growing rules (Q4) ---------------------
    print("\n== most stable rules across the timeline ==")
    for summary in explorer.top_rules(setting, windows.window_count - 1, k=3):
        rule = knowledge_base.catalog.get(summary.rule_id)
        print(
            f"  {rule.format():<30} stability={summary.stability:.3f} "
            f"mean_conf={summary.mean_confidence:.3f}"
        )
    print("== fastest-growing rules (confidence trend) ==")
    for summary in explorer.top_rules(
        setting, windows.window_count - 1, key="trend", k=3
    ):
        rule = knowledge_base.catalog.get(summary.rule_id)
        print(f"  {rule.format():<30} trend={summary.trend:+.4f}")

    # -- (c) roll-up to a coarser granularity ----------------------------
    print("\n== roll-up: one answer over the merged first four windows ==")
    answer = explorer.execute(
        RollupQuery(setting=setting, spec=PeriodSpec.window_range(0, 3))
    )
    print(
        f"certain rules: {len(answer.certain)}, possible: "
        f"{len(answer.possible)}, max support error: "
        f"{answer.max_support_error:.5f} (exact: {answer.is_exact})"
    )

    # -- (d) content-based exploration (Q5) -------------------------------
    seasonal_item = truth.seasonal_items[0]
    print(f"\n== rules mentioning seasonal item {seasonal_item} per window ==")
    content = explorer.execute(
        ContentQuery(setting=ParameterSetting(0.01, 0.2), items=(seasonal_item,))
    )
    for window, rule_ids in content.items():
        print(f"  window {window}: {len(rule_ids)} rules")
    peak = truth.seasonal_schedule[0]
    print(f"(the generator planted this item's popularity peak in phase {peak})")


if __name__ == "__main__":
    main()
